"""Section V / V-C — comparative QoS-space coverage across all WAN cases.

The paper's comparison methodology: "we measure the area covered by the
failure detector when we vary its parameter from a highly aggressive
behavior to a very conservative one.  The area covered by a failure
detector … corresponds to a set of QoS requirements that can possibly be
matched by that failure detector."

This bench computes that area (``repro.qos.covered_area``, TD ≤ 1 s,
MR ≤ 10/s, log accuracy axis) for every detector on every WAN case and
prints the coverage matrix.  Assertions encode the paper's comparative
conclusions: Chen's open-loop sweep covers the largest requirement area on
every case (it spans both regimes); Bertier's single point covers the
least; φ sits in between (aggressive range only).  SFD's *raison d'être*
is orthogonal to this metric — it does not sweep, it satisfies one stated
requirement automatically — so the matrix lists it for completeness
without a coverage claim.
"""

from repro.analysis.experiments import default_setup, run_figure
from repro.analysis.report import format_table
from repro.qos.area import covered_area
from repro.traces import ALL_PROFILES

from _common import SEED, emit

TD_MAX = 1.0
MR_MAX = 10.0


def run():
    out = {}
    for profile in ALL_PROFILES:
        result = run_figure(default_setup(profile, seed=SEED))
        out[profile.name] = {
            name: covered_area(curve, td_max=TD_MAX, acc_max=MR_MAX)
            for name, curve in result.curves.items()
        }
    return out


def test_comparative_coverage(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for case, areas in out.items():
        rows.append(
            {
                "case": case,
                **{d: f"{a:.3f}" for d, a in sorted(areas.items())},
            }
        )
    emit(
        "comparative_area",
        format_table(
            rows,
            title=(
                "QoS-space coverage per detector "
                f"(fraction of requirements with TD<={TD_MAX}s, "
                f"MR<={MR_MAX}/s satisfiable; Section V methodology)"
            ),
        ),
    )
    for case, areas in out.items():
        assert areas["chen"] >= areas["phi"], case
        assert areas["phi"] > areas["bertier"], case
        assert areas["chen"] > 0.15, case
