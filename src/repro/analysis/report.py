"""Plain-text rendering of tables and figure series.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and diff-friendly so
EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.qos.area import QoSCurve
from repro.qos.spec import QoSReport

__all__ = ["format_table", "format_curve", "format_figure", "format_qos"]


def format_table(rows: Sequence[Mapping[str, object]], *, title: str = "") -> str:
    """Align a list of uniform dict rows into an ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    headers = list(rows[0].keys())
    cells = [[str(r.get(h, "")) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out: list[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_qos(qos: QoSReport) -> str:
    """Compact one-line QoS rendering."""
    return (
        f"TD={qos.detection_time:8.4f}s  MR={qos.mistake_rate:10.6g}/s  "
        f"QAP={qos.query_accuracy * 100:9.5f}%"
    )


def format_curve(curve: QoSCurve, *, parameter_name: str = "param") -> str:
    """One detector's swept series as aligned rows."""
    rows = []
    for p in curve.points:
        td = p.detection_time
        rows.append(
            {
                parameter_name: f"{p.parameter:.6g}",
                "TD [s]": "inf" if math.isinf(td) else f"{td:.4f}",
                "MR [1/s]": f"{p.mistake_rate:.6g}",
                "QAP [%]": f"{p.query_accuracy * 100:.5f}",
            }
        )
    return format_table(rows, title=f"detector: {curve.detector}")


def format_figure(
    curves: Mapping[str, QoSCurve],
    *,
    title: str,
    parameter_names: Mapping[str, str] | None = None,
) -> str:
    """All series of one figure, in the paper's detector order."""
    names = parameter_names or {
        "chen": "alpha [s]",
        "bertier": "(fixed)",
        "phi": "Phi",
        "sfd": "SM1 [s]",
        "fixed": "timeout [s]",
        "quantile": "q",
    }
    order = ["sfd", "chen", "bertier", "phi", "quantile", "fixed"]
    parts = [title]
    for key in order:
        if key in curves:
            parts.append(
                format_curve(curves[key], parameter_name=names.get(key, "param"))
            )
    for key, curve in curves.items():  # anything non-standard, stable order
        if key not in order:
            parts.append(format_curve(curve, parameter_name=names.get(key, "param")))
    return "\n\n".join(parts)
