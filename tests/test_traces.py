"""Trace container, statistics, synthesis, WAN profiles."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceFormatError
from repro.traces import (
    ALL_PROFILES,
    PLANETLAB_PROFILES,
    HeartbeatTrace,
    TraceStats,
    WAN_1,
    WAN_2,
    WAN_6,
    WAN_JAIST,
    WANProfile,
    loss_bursts,
    synthesize,
)
from repro.traces.synth import send_times_for


def tiny_trace():
    return HeartbeatTrace(
        send_times=np.array([0.0, 1.0, 2.0, 3.0, 4.0]),
        delays=np.array([0.1, 0.2, np.nan, 0.1, 0.15]),
        name="tiny",
        meta={"rtt_mean": 0.3},
    )


class TestHeartbeatTrace:
    def test_basic_accessors(self):
        t = tiny_trace()
        assert t.total_sent == 5
        assert t.total_received == 4
        assert t.loss_rate == pytest.approx(0.2)
        assert t.duration == pytest.approx(4.0)
        np.testing.assert_allclose(t.arrival_times(), [0.1, 1.2, 3.1, 4.15])

    def test_validation(self):
        with pytest.raises(TraceFormatError):
            HeartbeatTrace(np.array([0.0, 0.0]), np.array([0.1, 0.1]))
        with pytest.raises(TraceFormatError):
            HeartbeatTrace(np.array([0.0, 1.0]), np.array([0.1]))
        with pytest.raises(TraceFormatError):
            HeartbeatTrace(np.array([0.0, 1.0]), np.array([-0.1, 0.1]))

    def test_monitor_view_orders_and_drops_stale(self):
        # Heartbeat 1 is overtaken by heartbeat 2 (huge delay).
        t = HeartbeatTrace(
            send_times=np.array([0.0, 1.0, 2.0]),
            delays=np.array([0.1, 5.0, 0.1]),
        )
        view = t.monitor_view()
        assert view.seq.tolist() == [0, 2]
        assert view.dropped_stale == 1
        assert (np.diff(view.arrivals) >= 0).all()
        np.testing.assert_allclose(view.send_times, [0.0, 2.0])

    def test_monitor_view_skips_losses(self):
        view = tiny_trace().monitor_view()
        assert view.seq.tolist() == [0, 1, 3, 4]

    def test_save_load_roundtrip(self, tmp_path):
        t = tiny_trace()
        path = tmp_path / "t.npz"
        t.save(path)
        back = HeartbeatTrace.load(path)
        np.testing.assert_array_equal(back.send_times, t.send_times)
        np.testing.assert_array_equal(
            back.delivered_mask, t.delivered_mask
        )
        assert back.name == "tiny"
        assert back.meta == {"rtt_mean": 0.3}

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, nothing=np.zeros(3))
        with pytest.raises(TraceFormatError):
            HeartbeatTrace.load(path)

    def test_slice(self):
        t = tiny_trace().slice(1, 4)
        assert t.total_sent == 3
        assert t.meta["rtt_mean"] == 0.3


class TestLossBursts:
    def test_no_losses(self):
        assert loss_bursts(np.ones(10, dtype=bool)).size == 0

    def test_burst_lengths(self):
        delivered = np.array([1, 0, 0, 1, 0, 1, 1, 0, 0, 0], dtype=bool)
        assert loss_bursts(delivered).tolist() == [2, 1, 3]

    def test_all_lost(self):
        assert loss_bursts(np.zeros(5, dtype=bool)).tolist() == [5]


class TestTraceStats:
    def test_from_trace(self):
        st = TraceStats.from_trace(tiny_trace())
        assert st.total_sent == 5
        assert st.loss_rate == pytest.approx(0.2)
        assert st.send_period_mean == pytest.approx(1.0)
        assert st.n_bursts == 1
        assert st.max_burst == 1
        assert st.rtt_mean == pytest.approx(0.3)  # from metadata

    def test_rtt_fallback_from_delays(self):
        t = tiny_trace()
        t.meta.pop("rtt_mean")
        st = TraceStats.from_trace(t)
        assert st.rtt_mean == pytest.approx(2 * np.nanmean(t.delays))

    def test_row_shape(self):
        row = TraceStats.from_trace(tiny_trace()).row()
        assert row["case"] == "tiny"
        assert "loss rate" in row and "RTT (Avg.)" in row


class TestWANProfiles:
    def test_published_constants(self):
        assert WAN_1.n_heartbeats == 6_737_054
        assert WAN_2.loss_rate == pytest.approx(0.05)
        assert WAN_6.rtt_mean == pytest.approx(0.07852)
        assert WAN_JAIST.send_mean == pytest.approx(0.103501)
        assert len(ALL_PROFILES) == 7
        assert len(PLANETLAB_PROFILES) == 6

    def test_jaist_burst_calibration(self):
        assert WAN_JAIST.mean_burst == pytest.approx(23_192 / 814)
        assert WAN_JAIST.loss_rate == pytest.approx(23_192 / 5_845_713)

    def test_delay_std_identity(self):
        # sigma_d^2 = (recv^2 - send^2)/2 for WAN-2.
        expect = math.sqrt((0.019547**2 - 0.001219**2) / 2)
        assert WAN_2.delay_std == pytest.approx(expect)

    def test_jaist_has_no_stall_components(self):
        assert WAN_JAIST.stall_components() is None

    def test_planetlab_stall_components(self):
        comps = WAN_1.stall_components()
        assert comps is not None and len(comps) == 2
        for p, m in comps:
            assert 0 < p < 1 and m > 0

    def test_models_constructible(self):
        for prof in ALL_PROFILES:
            assert prof.delay_model() is not None
            prof.loss_model()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WANProfile(
                name="x",
                sender="a",
                sender_host="a",
                receiver="b",
                receiver_host="b",
                n_heartbeats=1,
                send_mean=0.01,
                send_std=0.001,
                recv_std=0.002,
                loss_rate=0.0,
                rtt_mean=0.1,
            )

    def test_duration(self):
        assert WAN_1.duration(101) == pytest.approx(100 * WAN_1.send_mean)


class TestSynthesize:
    def test_deterministic_under_seed(self):
        a = synthesize(WAN_1, n=5000, seed=3)
        b = synthesize(WAN_1, n=5000, seed=3)
        np.testing.assert_array_equal(a.send_times, b.send_times)
        np.testing.assert_array_equal(a.delays, b.delays)

    def test_seed_changes_trace(self):
        a = synthesize(WAN_1, n=5000, seed=3)
        b = synthesize(WAN_1, n=5000, seed=4)
        assert not np.array_equal(a.send_times, b.send_times)

    def test_send_times_strictly_increasing(self):
        for prof in (WAN_1, WAN_JAIST, WAN_2):
            t = synthesize(prof, n=20_000, seed=1)
            assert (np.diff(t.send_times) > 0).all()

    @pytest.mark.parametrize("prof", [WAN_JAIST, WAN_1, WAN_2, WAN_6])
    def test_calibration_against_published_stats(self, prof):
        """Regenerated Table II row matches the published one (loosely:
        finite-sample + model choices documented in DESIGN.md)."""
        t = synthesize(prof, n=60_000, seed=2)
        st = TraceStats.from_trace(t)
        assert st.send_period_mean == pytest.approx(prof.send_mean, rel=0.02)
        assert st.send_period_std == pytest.approx(prof.send_std, rel=0.6)
        if prof.loss_rate > 0:
            assert st.loss_rate == pytest.approx(prof.loss_rate, rel=0.5)
        else:
            assert st.loss_rate == 0.0
        assert st.rtt_mean == pytest.approx(prof.rtt_mean)  # metadata

    def test_mean_delay_is_half_rtt(self):
        t = synthesize(WAN_6, n=30_000, seed=2, include_drift=False)
        d = t.delays[t.delivered_mask]
        assert d.mean() == pytest.approx(WAN_6.rtt_mean / 2, rel=0.1)

    def test_drift_inflates_effective_delays(self):
        base = synthesize(WAN_1, n=20_000, seed=2, include_drift=False)
        drifted = synthesize(WAN_1, n=20_000, seed=2, include_drift=True)
        d0 = np.nanmean(base.delays)
        d1 = np.nanmean(drifted.delays)
        assert d1 > d0

    def test_metadata_contents(self):
        t = synthesize(WAN_1, n=5000, seed=7)
        assert t.meta["profile"] == "WAN-1"
        assert t.meta["seed"] == 7
        assert t.meta["n_generated"] == 5000

    def test_minimum_size(self):
        with pytest.raises(ConfigurationError):
            synthesize(WAN_1, n=1)

    def test_send_times_for_gamma_fallback(self):
        import dataclasses

        prof = dataclasses.replace(WAN_1, name="nofloor", send_base=None)
        times = send_times_for(prof, 20_000, np.random.default_rng(0))
        periods = np.diff(times)
        assert periods.mean() == pytest.approx(prof.send_mean, rel=0.05)
        assert (periods > 0).all()


class TestLANReference:
    def test_profile_is_clean(self):
        from repro.traces import LAN_REFERENCE

        assert LAN_REFERENCE.loss_rate == 0.0
        assert LAN_REFERENCE.spike_rate == 0.0
        assert LAN_REFERENCE.rtt_mean < 0.001
        assert LAN_REFERENCE.stall_components() is None  # plain jitter

    def test_synthesis_statistics(self):
        from repro.traces import LAN_REFERENCE

        t = synthesize(LAN_REFERENCE, n=20_000, seed=4)
        st = TraceStats.from_trace(t)
        assert st.loss_rate == 0.0
        assert st.send_period_mean == pytest.approx(0.1, rel=0.01)
        # Sub-millisecond jitter end to end.
        assert st.recv_period_std < 0.002
        assert t.monitor_view().dropped_stale == 0  # no reordering on a LAN

    def test_lan_not_in_paper_profile_sets(self):
        from repro.traces import ALL_PROFILES, LAN_REFERENCE

        # The paper's tables cover seven cases; the LAN reference is an
        # extension and must not leak into Table I/II regeneration.
        assert LAN_REFERENCE not in ALL_PROFILES
