"""Table II — per-trace statistics, regenerated from the calibrated
synthetic traces and printed next to the published values.

The benchmark times the full pipeline: synthesize every WAN case at the
active ``REPRO_SCALE`` and compute its statistics row.
"""

import pytest

from repro.analysis import PAPER_TABLE2, format_table, table2_rows
from repro.analysis.experiments import scaled_heartbeats
from repro.traces import ALL_PROFILES, synthesize

from _common import SEED, emit


def regenerate():
    traces = [
        synthesize(p, n=scaled_heartbeats(p), seed=SEED) for p in ALL_PROFILES
    ]
    return traces, table2_rows(traces)


def paper_rows():
    out = []
    for case, vals in PAPER_TABLE2.items():
        row = {"case": case}
        for key, v in vals.items():
            if v is None:
                row[key] = "n/a"
            elif isinstance(v, (int,)):
                row[key] = v
            else:
                row[key] = f"{v} ms" if "rate" not in key else v
        out.append(row)
    return out


def test_table2(benchmark):
    traces, rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    emit(
        "table2",
        format_table(rows, title="Table II (regenerated, scaled traces)")
        + "\n\n"
        + format_table(paper_rows(), title="Table II (published values)"),
        data={"regenerated": rows, "published": paper_rows()},
    )
    by_case = {r["case"]: r for r in rows}
    for trace, prof in zip(traces, ALL_PROFILES):
        # Calibration: send-period mean within 2% of the published value.
        from repro.traces import TraceStats

        st = TraceStats.from_trace(trace)
        assert st.send_period_mean == pytest.approx(prof.send_mean, rel=0.02)
        if prof.loss_rate:
            assert st.loss_rate == pytest.approx(prof.loss_rate, rel=0.5)
    assert set(by_case) == {p.name for p in ALL_PROFILES}
