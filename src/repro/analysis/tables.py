"""Tables I and II: published values and regenerated rows.

Table I lists the PlanetLab sender/receiver host pairs; Table II the
per-trace statistics.  ``PAPER_TABLE2`` pins the published numbers so
benches and EXPERIMENTS.md can print paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.traces.stats import TraceStats
from repro.traces.trace import HeartbeatTrace
from repro.traces.wan import PLANETLAB_PROFILES, WANProfile

__all__ = ["table1_rows", "table2_rows", "PAPER_TABLE2"]


#: Published Table II values (periods/RTT in milliseconds) plus the
#: WAN-JAIST numbers from Section V-A1, keyed by case name.
PAPER_TABLE2: dict[str, dict] = {
    "WAN-JAIST": {
        "total (#msg)": 5_845_713,
        "loss rate": "0.399%",
        "send (Avg.)": 103.501,
        "send (stddev)": 0.189,
        "receive (Avg.)": None,  # not published for this trace
        "receive (stddev)": None,
        "RTT (Avg.)": 283.338,
    },
    "WAN-1": {
        "total (#msg)": 6_737_054,
        "loss rate": "0%",
        "send (Avg.)": 12.825,
        "send (stddev)": 13.069,
        "receive (Avg.)": 12.83,
        "receive (stddev)": 14.892,
        "RTT (Avg.)": 193.909,
    },
    "WAN-2": {
        "total (#msg)": 7_477_304,
        "loss rate": "5%",
        "send (Avg.)": 12.176,
        "send (stddev)": 1.219,
        "receive (Avg.)": 12.206,
        "receive (stddev)": 19.547,
        "RTT (Avg.)": 194.959,
    },
    "WAN-3": {
        "total (#msg)": 7_104_446,
        "loss rate": "2%",
        "send (Avg.)": 12.21,
        "send (stddev)": 1.243,
        "receive (Avg.)": 12.235,
        "receive (stddev)": 4.768,
        "RTT (Avg.)": 189.44,
    },
    "WAN-4": {
        "total (#msg)": 7_028_178,
        "loss rate": "0%",
        "send (Avg.)": 12.337,
        "send (stddev)": 9.953,
        "receive (Avg.)": 12.346,
        "receive (stddev)": 22.918,
        "RTT (Avg.)": 172.863,
    },
    "WAN-5": {
        "total (#msg)": 7_008_170,
        "loss rate": "4%",
        "send (Avg.)": 12.367,
        "send (stddev)": 15.599,
        "receive (Avg.)": 12.94,
        "receive (stddev)": 16.557,
        "RTT (Avg.)": 362.423,
    },
    "WAN-6": {
        "total (#msg)": 7_040_560,
        "loss rate": "0%",
        "send (Avg.)": 12.33,
        "send (stddev)": 10.185,
        "receive (Avg.)": 12.42,
        "receive (stddev)": 17.56,
        "RTT (Avg.)": 78.52,
    },
}


def table1_rows(
    profiles: Sequence[WANProfile] = PLANETLAB_PROFILES,
) -> list[dict]:
    """Table I: sender/receiver sites and hostnames per WAN case."""
    return [
        {
            "WAN case": p.name,
            "Sender": p.sender,
            "Sender-hostname": p.sender_host,
            "Receiver": p.receiver,
            "Receiver-hostname": p.receiver_host,
        }
        for p in profiles
    ]


def table2_rows(traces: Iterable[HeartbeatTrace]) -> list[dict]:
    """Regenerated Table II rows from (synthetic) traces."""
    return [TraceStats.from_trace(t).row() for t in traces]
