"""The experiment engine: plan → executor pipeline for Section V sweeps.

"One replay of one spec over one view" is the unit of work.
:class:`ExperimentPlan` expands (trace × family × grid) declarations into
flat :class:`ReplayJob` lists; pluggable executors run them — serially or
fanned out across processes with fork-shared read-only views — and curves
reassemble in deterministic sweep order regardless of completion order.
:mod:`repro.exp.config` adds the TOML front end (``repro run``),
:mod:`repro.exp.archive` the lossless JSON curve archive, and
:mod:`repro.exp.cache` the content-addressed result cache that makes
repeated runs incremental (only changed grid points replay).

The sweep/figure layers (:func:`repro.analysis.sweep.sweep_curve`,
:func:`repro.analysis.experiments.run_figure`) are thin wrappers over
this package.
"""

from repro.exp.plan import ExperimentPlan, PlanResult, ReplayJob, SweepDecl
from repro.exp.executors import (
    JobFailedError,
    ProcessPoolExecutor,
    SerialExecutor,
    default_jobs,
)
from repro.exp.archive import (
    archive_curves,
    curve_from_dict,
    curve_to_dict,
    load_curve,
    qos_from_dict,
    qos_to_dict,
)
from repro.exp.cache import CACHE_FORMAT, CacheStats, SweepCache
from repro.exp.config import ExperimentConfig, RunOutcome, load_config, run_config

__all__ = [
    "CACHE_FORMAT",
    "CacheStats",
    "SweepCache",
    "ExperimentPlan",
    "PlanResult",
    "ReplayJob",
    "SweepDecl",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "JobFailedError",
    "default_jobs",
    "archive_curves",
    "load_curve",
    "curve_to_dict",
    "curve_from_dict",
    "qos_to_dict",
    "qos_from_dict",
    "ExperimentConfig",
    "RunOutcome",
    "load_config",
    "run_config",
]
