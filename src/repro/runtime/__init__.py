"""Live asyncio/UDP runtime.

"The inter-process communication model is based on message exchanges over
the User Datagram Protocol (UDP)" (Section II-B).  This subpackage runs
the detectors against *real* sockets: an asyncio heartbeat sender, a
listener, and a service facade that keeps one detector per peer, answers
status queries, and drives accrual threshold callbacks — the deployable
counterpart of the simulator in :mod:`repro.sim`.
"""

from repro.runtime.udp import (
    HEARTBEAT_SIZE,
    pack_heartbeat,
    unpack_heartbeat,
    UDPHeartbeatSender,
    UDPHeartbeatListener,
)
from repro.runtime.monitor import LiveMonitor
from repro.runtime.service import FailureDetectionService, PeerStatus
from repro.runtime.faults import (
    ChaosEvent,
    ChaosScenario,
    FaultInjector,
    FaultPlan,
    FaultStats,
)
from repro.runtime.supervisor import Supervisor, TaskStats

__all__ = [
    "HEARTBEAT_SIZE",
    "pack_heartbeat",
    "unpack_heartbeat",
    "UDPHeartbeatSender",
    "UDPHeartbeatListener",
    "LiveMonitor",
    "FailureDetectionService",
    "PeerStatus",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "ChaosEvent",
    "ChaosScenario",
    "Supervisor",
    "TaskStats",
]
