"""Extension features: trace CSV interop, link outages, offline planner."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceFormatError
from repro.detectors import ChenFD
from repro.net import ConstantDelay
from repro.qos.planner import (
    feasible_points,
    plan_chen_alpha,
    plan_from_curve,
)
from repro.qos.area import QoSCurve
from repro.qos.spec import QoSReport, QoSRequirements
from repro.sim import CrashPlan, HeartbeatSender, MonitorProcess, SimLink, Simulator
from repro.traces import HeartbeatTrace, synthesize, WAN_1


class TestTraceCSV:
    def trace(self):
        return HeartbeatTrace(
            send_times=np.array([0.0, 1.0, 2.0, 3.0]),
            delays=np.array([0.25, np.nan, 0.125, 0.5]),
            name="csv",
        )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.csv"
        t = self.trace()
        t.to_csv(path)
        back = HeartbeatTrace.from_csv(path, name="csv")
        np.testing.assert_array_equal(back.send_times, t.send_times)
        np.testing.assert_array_equal(back.delivered_mask, t.delivered_mask)
        np.testing.assert_allclose(
            back.delays[back.delivered_mask], t.delays[t.delivered_mask]
        )

    def test_roundtrip_preserves_monitor_view(self, tmp_path):
        path = tmp_path / "t.csv"
        trace = synthesize(WAN_1, n=2000, seed=1)
        trace.to_csv(path)
        back = HeartbeatTrace.from_csv(path)
        v1, v2 = trace.monitor_view(), back.monitor_view()
        np.testing.assert_array_equal(v1.seq, v2.seq)
        np.testing.assert_allclose(v1.arrivals, v2.arrivals, rtol=0, atol=0)

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope,nope\n")
        with pytest.raises(TraceFormatError):
            HeartbeatTrace.from_csv(path)

    def test_rejects_sequence_gap(self, tmp_path):
        path = tmp_path / "gap.csv"
        path.write_text("seq,send_time,arrival_time\n0,0.0,0.1\n2,2.0,2.1\n")
        with pytest.raises(TraceFormatError):
            HeartbeatTrace.from_csv(path)

    def test_rejects_malformed_fields(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("seq,send_time,arrival_time\n0,zero,0.1\n")
        with pytest.raises(TraceFormatError):
            HeartbeatTrace.from_csv(path)


class TestLinkOutage:
    def test_messages_in_window_are_lost(self):
        sim = Simulator()
        got = []
        link = SimLink(sim, ConstantDelay(0.01), deliver=got.append)
        link.outage(1.0, 2.0)
        for t in (0.5, 1.5, 2.5, 3.5):
            sim.schedule_at(t, lambda t=t: link.send(t))
        sim.run()
        assert got == [0.5, 3.5]
        assert link.lost == 2

    def test_outage_validation(self):
        sim = Simulator()
        link = SimLink(sim, ConstantDelay(0.01))
        with pytest.raises(ConfigurationError):
            link.outage(1.0, 0.0)

    def test_detector_rides_out_partition(self):
        """During a partition the monitor wrongly suspects; after healing
        it trusts again — one long mistake, not a permanent one."""
        sim = Simulator()
        rng = np.random.default_rng(0)
        mon = MonitorProcess(sim, ChenFD(0.05, window_size=30))
        link = SimLink(
            sim, ConstantDelay(0.02), rng=rng, deliver=mon.deliver
        )
        link.outage(20.0, 5.0)
        HeartbeatSender(sim, link, interval=0.1, crash=CrashPlan.never(), rng=rng)
        sim.run(until=22.0)
        assert mon.suspects_now()  # mid-partition: looks crashed
        sim.run(until=40.0)
        assert not mon.suspects_now()  # healed: trusted again
        rep = mon.finish()
        assert rep.qos.mistakes >= 1
        assert rep.qos.mistake_time == pytest.approx(5.0, abs=0.5)


class TestPlanner:
    def curve(self, pts):
        c = QoSCurve("chen")
        for param, td, mr, qap in pts:
            c.add(
                param,
                QoSReport(
                    detection_time=td, mistake_rate=mr, query_accuracy=qap
                ),
            )
        return c

    REQ = QoSRequirements(
        max_detection_time=1.0, max_mistake_rate=0.1, min_query_accuracy=0.99
    )

    def test_picks_fastest_feasible(self):
        c = self.curve(
            [
                (0.01, 0.2, 5.0, 0.9),  # too inaccurate
                (0.1, 0.4, 0.05, 0.995),  # feasible
                (0.5, 0.8, 0.01, 0.999),  # feasible but slower
                (2.0, 3.0, 0.0, 1.0),  # too slow
            ]
        )
        plan = plan_from_curve(c, self.REQ)
        assert plan.satisfiable
        assert plan.parameter == 0.1
        assert len(plan.feasible) == 2

    def test_unsatisfiable(self):
        c = self.curve([(0.01, 0.2, 5.0, 0.9), (2.0, 3.0, 0.0, 1.0)])
        plan = plan_from_curve(c, self.REQ)
        assert not plan.satisfiable
        with pytest.raises(ConfigurationError):
            _ = plan.parameter

    def test_feasible_points_filter(self):
        c = self.curve([(0.1, 0.4, 0.05, 0.995)])
        assert len(feasible_points(c, self.REQ)) == 1
        strict = QoSRequirements(max_detection_time=0.1)
        assert feasible_points(c, strict) == ()

    def test_plan_chen_alpha_end_to_end(self):
        view = synthesize(WAN_1, n=20_000, seed=9).monitor_view()
        req = QoSRequirements(
            max_detection_time=0.9,
            max_mistake_rate=0.35,
            min_query_accuracy=0.97,
        )
        plan = plan_chen_alpha(view, req, window=500)
        assert plan.satisfiable
        # The chosen point's measured QoS indeed satisfies the contract.
        assert req.satisfied_by(plan.point.qos)
        # And it is the fastest feasible one.
        assert plan.point.detection_time == min(
            p.detection_time for p in plan.feasible
        )

    def test_plan_chen_alpha_infeasible_contract(self):
        view = synthesize(WAN_1, n=20_000, seed=9).monitor_view()
        impossible = QoSRequirements(
            max_detection_time=0.01, max_mistake_rate=1e-9
        )
        plan = plan_chen_alpha(view, impossible, window=500)
        assert not plan.satisfiable
