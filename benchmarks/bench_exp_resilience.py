"""Failure-policy overhead and chaos-recovery cost of the experiment engine.

The resilience machinery (``FailurePolicy`` retry accounting, the
per-attempt timeout thread, quarantine bookkeeping) wraps every replay
job — so its price on a *clean* run must be negligible, or nobody
enables it.  This bench times one WAN-1 plan three ways and archives
``BENCH_exp_resilience.json``:

* ``plain_s``   — historical path, no policy;
* ``policy_s``  — full policy armed (timeout + retries + continue mode),
  zero faults: the pure bookkeeping overhead, asserted **< 2%** of the
  plain run (measured min-of-N to shave scheduler noise);
* ``chaos_s``   — same plan under a deterministic fault schedule
  (transient error + transient hang), policy-recovered to completion:
  what a survived fault storm actually costs.

Both policy paths must stay bit-identical to the plain run — resilience
may never change a number, only whether the run survives.
"""

import time

from repro.analysis.experiments import scaled_heartbeats
from repro.exp import (
    ChaosSchedule,
    ExperimentPlan,
    FailurePolicy,
    FlakyExecutor,
    JobFault,
    SerialExecutor,
)
from repro.traces import WAN_1, synthesize

from _common import SEED, bench_stats, emit

#: Timing repetitions per variant.  The two variants are *interleaved*
#: (plain, policy, plain, policy, …) and their minima compared: load
#: noise on shared CI boxes only ever inflates a wall-clock measurement,
#: and interleaving keeps slow drift (another job starting mid-bench)
#: from landing entirely on one variant.
ROUNDS = 5

#: Clean-run policy-overhead ceiling (fraction of the plain run).
OVERHEAD_LIMIT = 0.02

POLICY = FailurePolicy(
    timeout=120.0, max_retries=2, backoff=0.001, jitter=0.0, mode="continue"
)


def build_plan() -> ExperimentPlan:
    n = scaled_heartbeats(WAN_1, scale=16)
    trace = synthesize(WAN_1, n=n, seed=SEED)
    plan = ExperimentPlan().add_trace("wan1", trace)
    plan.add_sweep(
        "wan1", "chen", [0.005, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 0.9],
        window=1000,
    )
    plan.add_sweep(
        "wan1", "phi", [0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0], window=1000
    )
    return plan


def run():
    plan = build_plan()
    plain_s = policy_s = float("inf")
    plain = policed = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        plain = plan.run(SerialExecutor())
        plain_s = min(plain_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        policed = plan.run(SerialExecutor(), policy=POLICY)
        policy_s = min(policy_s, time.perf_counter() - t0)
    # Chaos: one transient error and one transient hang, both cured by
    # the policy's first retry (measured once — recovery includes real
    # backoff sleeps and an abandoned attempt, not pure bookkeeping).
    sched = ChaosSchedule(
        {
            2: JobFault("error", fail_attempts=1),
            9: JobFault("timeout", fail_attempts=1, hang=30.0),
        }
    )
    chaos_pol = FailurePolicy(
        timeout=0.75, max_retries=2, backoff=0.001, jitter=0.0, mode="continue"
    )
    t0 = time.perf_counter()
    chaotic = plan.run(FlakyExecutor(sched), policy=chaos_pol)
    chaos_s = time.perf_counter() - t0
    return len(plan), plain, plain_s, policed, policy_s, chaotic, chaos_s


def test_failure_policy_overhead(benchmark):
    (
        n_jobs,
        plain,
        plain_s,
        policed,
        policy_s,
        chaotic,
        chaos_s,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)
    # Resilience must not change a single bit of a clean run.
    assert policed.curves == plain.curves
    assert not policed.failures
    # …and a policy-recovered chaotic run converges to the same curves.
    assert chaotic.curves == plain.curves
    assert not chaotic.failures
    overhead = policy_s / plain_s - 1.0
    assert overhead < OVERHEAD_LIMIT, (
        f"failure-policy bookkeeping cost {overhead:.1%} of a clean run "
        f"(limit {OVERHEAD_LIMIT:.0%}): {plain_s:.3f}s -> {policy_s:.3f}s"
    )
    lines = [
        f"Failure-policy overhead: one WAN-1 plan, {n_jobs} replay jobs",
        f"  plain    : {plain_s:8.3f} s  (no policy, min of {ROUNDS})",
        f"  policy   : {policy_s:8.3f} s  (timeout+retries armed, zero faults)",
        f"  overhead : {overhead:8.1%}  (limit {OVERHEAD_LIMIT:.0%})",
        f"  chaos    : {chaos_s:8.3f} s  (1 transient error + 1 transient "
        "hang, recovered)",
        "  curves   : bit-identical across all three runs",
    ]
    text = "\n".join(lines)
    print(f"\n{text}")
    emit(
        "exp_resilience",
        text,
        {
            "n_jobs": n_jobs,
            "timing_rounds": ROUNDS,
            "plain_s": plain_s,
            "policy_s": policy_s,
            "overhead_frac": overhead,
            "overhead_limit": OVERHEAD_LIMIT,
            "chaos_s": chaos_s,
            "chaos_faults": {"error": 1, "timeout": 1},
            "bit_identical": True,
            **bench_stats(benchmark),
        },
    )
