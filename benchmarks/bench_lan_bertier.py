"""Sections I/III (text) — Bertier FD at its design point.

"Bertier FD is primarily designed to be used over wired local area
networks (LANs), where messages are seldom lost."  On the WAN figures
Bertier is a mediocre aggressive point; this bench replays the same four
detectors over a wired-LAN reference trace (sub-millisecond delays,
microsecond jitter, no losses) and shows the claim: at its design point
Bertier's single self-adapting configuration is excellent — millisecond
detection with near-perfect accuracy, and a *better accuracy-at-speed*
trade than any similarly fast Chen point — which is exactly what "solved
admirably well" (the paper's footnote 1) looks like.
"""

import numpy as np

from repro.analysis import format_figure
from repro.exp import ExperimentPlan
from repro.traces import LAN_REFERENCE, synthesize

from _common import SEED, emit

N = 60_000


def run():
    trace = synthesize(LAN_REFERENCE, n=N, seed=SEED)
    alphas = [float(a) for a in np.geomspace(2e-4, 0.1, 10)]
    plan = ExperimentPlan().add_trace("lan", trace)
    plan.add_sweep("lan", "bertier", window=1000)
    plan.add_sweep("lan", "chen", alphas, window=1000)
    plan.add_sweep("lan", "phi", [1.0, 4.0, 8.0, 16.0], window=1000)
    return plan.run().trace_curves("lan")


def test_bertier_on_lan(benchmark):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "lan_bertier",
        format_figure(
            curves, title="Wired-LAN reference: Bertier at its design point"
        ),
    )
    b = curves["bertier"].points[0]
    # Millisecond-class detection (vs ~150 ms+ on the WAN cases) with
    # near-perfect accuracy: the design-point claim.
    assert b.detection_time < 0.12  # ~ the heartbeat interval
    assert b.query_accuracy > 0.999
    assert b.mistake_rate < 0.1
    # And it is not dominated by Chen at comparable speed: every Chen
    # point at least as fast as Bertier has no better accuracy.
    chen = curves["chen"]
    for p in chen.points:
        if p.detection_time <= b.detection_time:
            assert p.query_accuracy <= b.query_accuracy + 1e-6
