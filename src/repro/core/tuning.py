"""The *general* self-tuning method applied to any timeout detector.

Section IV-A is explicit that the feedback scheme is not SFD-specific:
"This method is general, and can be applied to the other adaptive
timeout-based FD schemes."  :class:`SelfTuningMonitor` realizes that claim:
it hosts any :class:`~repro.detectors.base.TimeoutFailureDetector` whose
conservativeness is controlled by one scalar attribute (Chen's ``alpha``,
φ's ``threshold``, the fixed detector's ``fixed_timeout`` …), performs the
same streaming QoS self-accounting as SFD, and nudges the knob once per
time slot through the shared :class:`~repro.core.feedback.FeedbackController`.

The knob must be *monotone*: increasing it must make the detector more
conservative (larger TD, fewer mistakes).  Every detector in this library
satisfies that for the attributes named above.

Wrapping :class:`~repro.detectors.chen.ChenFD` on ``alpha`` reproduces SFD
exactly (SFD *is* self-tuned Chen with an accrual face); the test suite
asserts the two freshness-point trajectories coincide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, NotWarmedUpError
from repro.detectors.base import TimeoutFailureDetector
from repro.core.feedback import (
    FeedbackController,
    FeedbackDriver,
    InfeasiblePolicy,
    SlotConfig,
    TuningRecord,
    TuningStatus,
)
from repro.qos.metrics import MistakeAccumulator
from repro.qos.spec import QoSReport, QoSRequirements, Satisfaction

__all__ = ["SelfTuningMonitor"]


@dataclass(frozen=True, slots=True)
class _Knob:
    """Accessor for the wrapped detector's scalar parameter."""

    attribute: str
    minimum: float
    maximum: float

    def get(self, detector: TimeoutFailureDetector) -> float:
        return float(getattr(detector, self.attribute))

    def set(self, detector: TimeoutFailureDetector, value: float) -> None:
        setattr(detector, self.attribute, min(max(value, self.minimum), self.maximum))


class SelfTuningMonitor:
    """Wrap a timeout detector with the paper's general feedback loop.

    Parameters
    ----------
    detector:
        Any streaming timeout detector.  The monitor owns the feeding of
        heartbeats: call :meth:`observe` on the monitor, not the detector.
    knob:
        Name of the scalar attribute to tune (must increase
        conservativeness monotonically).
    requirements:
        Target QoS bounds.
    alpha, beta, policy:
        Feedback parameters, as in :class:`~repro.core.sfd.SFD`.
    slot:
        Adjustment cadence.
    knob_bounds:
        Clamp for the tuned attribute (default ``[0, inf)``).
    """

    def __init__(
        self,
        detector: TimeoutFailureDetector,
        knob: str,
        requirements: QoSRequirements,
        *,
        alpha: float = 0.1,
        beta: float = 0.5,
        slot: SlotConfig | None = None,
        policy: InfeasiblePolicy = InfeasiblePolicy.STOP,
        knob_bounds: tuple[float, float] = (0.0, math.inf),
    ):
        if not hasattr(detector, knob):
            raise ConfigurationError(
                f"{type(detector).__name__} has no attribute {knob!r} to tune"
            )
        lo, hi = knob_bounds
        if not (lo <= hi):
            raise ConfigurationError(f"invalid knob_bounds {knob_bounds!r}")
        self.detector = detector
        self.requirements = requirements
        self.slot = slot if slot is not None else SlotConfig()
        self._knob = _Knob(knob, float(lo), float(hi))
        self._driver = FeedbackDriver(
            FeedbackController(requirements, alpha=alpha, beta=beta, policy=policy),
            self.slot,
        )
        self._acc: MistakeAccumulator | None = None
        self._hb_in_slot = 0
        self._slot_index = 0
        self._trace: list[TuningRecord] = []

    def observe(self, seq: int, arrival: float, send_time: float | None = None) -> None:
        """Feed one heartbeat; account QoS; adjust the knob at slot ends."""
        arrival = float(arrival)
        was_ready = self.detector.ready
        if was_ready and self._acc is not None:
            fp_prev = self.detector.freshness_point()
            start = max(fp_prev, self.detector.last_arrival)
            if arrival > start:
                self._acc.add_mistake(start, arrival)
        self.detector.observe(seq, arrival, send_time)
        if not self.detector.ready:
            return
        if not was_ready:
            self._acc = MistakeAccumulator(t_begin=arrival)
        assert self._acc is not None
        origin = send_time if send_time is not None else arrival
        self._acc.add_detection_sample(self.detector.freshness_point() - origin)
        self._hb_in_slot += 1
        if self._hb_in_slot >= self.slot.heartbeats:
            self._hb_in_slot = 0
            self._end_slot(arrival)

    def _end_slot(self, now: float) -> None:
        assert self._acc is not None
        acc = self._acc
        before = self._knob.get(self.detector)
        delta, snapshot = self._driver.end_slot(
            acc.t_begin, now, acc.mistakes, acc.mistake_time, acc.td_sum, acc.td_count
        )
        self._slot_index += 1
        if snapshot is None:
            return
        self._knob.set(self.detector, before + delta)
        self._trace.append(
            TuningRecord(
                slot=self._slot_index,
                time=now,
                sm_before=before,
                sm_after=self._knob.get(self.detector),
                decision=self._driver.controller.last_decision or Satisfaction.STABLE,
                qos=snapshot,
                status=self._driver.status,
            )
        )

    # Pass-through queries -------------------------------------------- #

    @property
    def ready(self) -> bool:
        return self.detector.ready

    def suspects(self, now: float) -> bool:
        return self.detector.suspects(now)

    def suspicion(self, now: float) -> float:
        return self.detector.suspicion(now)

    def freshness_point(self) -> float:
        return self.detector.freshness_point()

    @property
    def knob_value(self) -> float:
        """Current value of the tuned attribute."""
        return self._knob.get(self.detector)

    def update_requirements(self, requirements: QoSRequirements) -> None:
        """Re-target the feedback loop at a new QoS contract at runtime."""
        self.requirements = requirements
        self._driver.controller.update_requirements(requirements)

    @property
    def status(self) -> TuningStatus:
        if not self.detector.ready:
            return TuningStatus.WARMUP
        return self._driver.status

    @property
    def tuning_trace(self) -> list[TuningRecord]:
        return self._trace

    def qos_snapshot(self, now: float) -> QoSReport:
        if self._acc is None:
            raise NotWarmedUpError("monitor has no accounting before warm-up ends")
        return self._acc.snapshot(float(now))
