"""`repro top` / `repro audit` rendering: terminal views of scraped metrics.

The renderers consume :class:`~repro.obs.exposition.ParsedMetrics` (the
output of scraping the Prometheus endpoint) plus, for the audit view, the
``/events`` trace tail — *not* live objects — so the console works against
any process exposing the catalog, exactly like a dashboard would, and
doubles as an end-to-end check of the exposure layer.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.obs.exposition import ParsedMetrics

__all__ = ["STATUS_NAMES", "render_audit", "render_top"]

#: Inverse of :data:`repro.obs.instruments.STATUS_CODES` (kept as a plain
#: table so this module depends only on the wire format).
STATUS_NAMES: dict[int, str] = {
    0: "unknown",
    1: "active",
    2: "slow",
    3: "suspect",
    4: "dead",
}


def _fmt(value: float | None, spec: str = ".3f", missing: str = "-") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return missing
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return format(value, spec)


def _vs_target(measured: float | None, target: float | None, *, lower_is_ok: bool) -> str:
    """``measured/target`` with a pass/fail marker when both are known."""
    if measured is None:
        return "-"
    if target is None or (isinstance(target, float) and math.isinf(target)):
        return _fmt(measured)
    ok = measured <= target if lower_is_ok else measured >= target
    return f"{_fmt(measured)}/{_fmt(target)}{'' if ok else ' !'}"


def render_top(metrics: ParsedMetrics, *, title: str = "repro top") -> str:
    """One refresh frame: header counters plus a per-node status table."""
    lines: list[str] = []
    nodes = metrics.label_values("repro_node_status", "node")

    received = metrics.value("repro_monitor_received_total")
    malformed = metrics.value("repro_listener_malformed_total", default=0.0)
    suppressed = metrics.value(
        "repro_listener_malformed_suppressed_total", default=0.0
    )
    by_status = {
        dict(labelset).get("status", "?"): value
        for labelset, value in metrics.series("repro_nodes_by_status").items()
        if value
    }
    summary = ", ".join(f"{int(n)} {s}" for s, n in sorted(by_status.items()))
    lines.append(
        f"{title} — {len(nodes)} node(s)"
        + (f" [{summary}]" if summary else "")
    )
    lines.append(
        f"received={_fmt(received, '.0f')} heartbeats"
        f"  malformed={malformed:.0f} (+{suppressed:.0f} suppressed)"
    )
    lines.append("")

    header = (
        f"{'NODE':<16} {'STATUS':<8} {'SLO':<5} {'SUSP':>8} {'HB':>8} {'RST':>4} "
        f"{'SM[s]':>8} {'TD/target':>16} {'MR/target':>16} {'QAP/target':>16}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for node in nodes:
        code = metrics.value("repro_node_status", node=node)
        status = STATUS_NAMES.get(int(code) if code is not None else 0, "?")
        slo = _slo_verdict(metrics.value("repro_slo_met", node=node))
        susp = metrics.value("repro_node_suspicion", node=node)
        hb = metrics.value("repro_heartbeats_received_total", node=node)
        rst = metrics.value("repro_node_restarts_total", node=node, default=0.0)
        sm = metrics.value("repro_sfd_safety_margin_seconds", node=node)
        td = _vs_target(
            metrics.value("repro_sfd_detection_time_seconds", node=node),
            metrics.value("repro_sfd_target_detection_time_seconds", node=node),
            lower_is_ok=True,
        )
        mr = _vs_target(
            metrics.value("repro_sfd_mistake_rate", node=node),
            metrics.value("repro_sfd_target_mistake_rate", node=node),
            lower_is_ok=True,
        )
        qap = _vs_target(
            metrics.value("repro_sfd_query_accuracy", node=node),
            metrics.value("repro_sfd_target_query_accuracy", node=node),
            lower_is_ok=False,
        )
        lines.append(
            f"{node:<16} {status:<8} {slo:<5} {_fmt(susp, '.2f'):>8} "
            f"{_fmt(hb, '.0f'):>8} {int(rst or 0):>4} {_fmt(sm):>8} "
            f"{td:>16} {mr:>16} {qap:>16}"
        )
    if not nodes:
        lines.append("(no nodes reported yet)")
    return "\n".join(lines)


def _slo_verdict(met: float | None) -> str:
    """``repro_slo_met`` gauge value to a column cell."""
    if met is None:
        return "-"
    return "met" if met else "VIOL"


#: One character per Sat_k branch for compact decision histories.
_DECISION_GLYPHS = {"stable": "=", "grow": "+", "shrink": "-", "infeasible": "x"}


def render_audit(
    metrics: ParsedMetrics,
    events: Iterable[dict] = (),
    *,
    title: str = "repro audit",
    trail: int = 8,
) -> str:
    """The QoS audit view: SLO status, SM trajectories, decision history.

    Parameters
    ----------
    metrics:
        A parsed scrape of the ``repro_qos_*`` / ``repro_slo_*`` /
        ``repro_sfd_*`` families.
    events:
        Trace events (the ``/events`` tail or ``EventLog.recent()``);
        ``sfd_slot`` events feed the per-node trajectory section, and
        breach/infeasibility events feed the recent-events tail.
    trail:
        How many trailing SM(k) values to print per node.
    """
    events = list(events)
    slots_by_node: dict[str, list[dict]] = {}
    for e in events:
        if e.get("kind") == "sfd_slot" and "node" in e:
            slots_by_node.setdefault(e["node"], []).append(e)

    nodes = sorted(
        set(metrics.label_values("repro_qos_qap", "node"))
        | set(metrics.label_values("repro_slo_met", "node"))
        | set(slots_by_node)
    )
    lines: list[str] = [f"{title} — {len(nodes)} node(s) audited", ""]

    header = (
        f"{'NODE':<16} {'SLO':<5} {'BREACH':>6} {'TUNE':<10} "
        f"{'TD/target':>16} {'MR/target':>16} {'QAP/target':>16} {'T_M[s]':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for node in nodes:
        slo = _slo_verdict(metrics.value("repro_slo_met", node=node))
        breaches = sum(
            value
            for labelset, value in metrics.series("repro_slo_breaches_total").items()
            if dict(labelset).get("node") == node
        )
        slots = slots_by_node.get(node, [])
        tune = slots[-1].get("status", "-") if slots else "-"
        td = _vs_target(
            metrics.value("repro_qos_td_seconds", node=node),
            metrics.value("repro_sfd_target_detection_time_seconds", node=node),
            lower_is_ok=True,
        )
        mr = _vs_target(
            metrics.value("repro_qos_mr", node=node),
            metrics.value("repro_sfd_target_mistake_rate", node=node),
            lower_is_ok=True,
        )
        qap = _vs_target(
            metrics.value("repro_qos_qap", node=node),
            metrics.value("repro_sfd_target_query_accuracy", node=node),
            lower_is_ok=False,
        )
        tm = metrics.value("repro_qos_mistake_duration_seconds", node=node)
        lines.append(
            f"{node:<16} {slo:<5} {int(breaches):>6} {str(tune):<10} "
            f"{td:>16} {mr:>16} {qap:>16} {_fmt(tm):>8}"
        )
    if not nodes:
        lines.append("(no nodes audited yet)")

    tuned = [n for n in nodes if slots_by_node.get(n)]
    if tuned:
        lines.append("")
        lines.append("self-tuning trajectory (SM(k), oldest→newest):")
        for node in tuned:
            slots = slots_by_node[node]
            glyphs = "".join(
                _DECISION_GLYPHS.get(e.get("decision", ""), "?") for e in slots
            )
            sm_trail = " ".join(_fmt(e.get("sm_after")) for e in slots[-trail:])
            first, last = slots[0], slots[-1]
            lines.append(
                f"  {node:<16} {len(slots):>3} slot(s)  "
                f"SM {_fmt(first.get('sm_before'))} → {_fmt(last.get('sm_after'))}  "
                f"sat[{glyphs}]"
            )
            lines.append(f"  {'':<16} tail: {sm_trail}")

    notable = [
        e for e in events
        if e.get("kind") in ("slo_breach", "slo_recovered", "sfd_infeasible")
    ]
    if notable:
        lines.append("")
        lines.append("recent SLO events:")
        for e in notable[-6:]:
            if e["kind"] == "slo_breach":
                lines.append(
                    f"  breach     {e.get('node', '?'):<16} "
                    f"violated={e.get('violated', '?')}"
                )
            elif e["kind"] == "slo_recovered":
                lines.append(f"  recovered  {e.get('node', '?'):<16}")
            else:
                lines.append(
                    f"  infeasible {e.get('node', '?'):<16} "
                    f"slot={e.get('slot', '?')} (gave a response)"
                )
    return "\n".join(lines)
