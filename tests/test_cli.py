"""CLI smoke tests (`python -m repro ...`)."""

import pytest

from repro.cli import main
from repro.traces import HeartbeatTrace


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCLI:
    def test_table1(self, capsys):
        out = run_cli(capsys, "table1")
        assert "WAN-1" in out and "planet1.scs.stanford.edu" in out

    def test_table2_small_scale(self, capsys):
        out = run_cli(capsys, "table2", "--scale", "4000")
        assert "WAN-JAIST" in out and "loss rate" in out

    def test_figure(self, capsys):
        out = run_cli(capsys, "figure", "--case", "WAN-6", "--scale", "700")
        assert "detector: sfd" in out
        assert "detector: chen" in out
        assert "detector: phi" in out

    def test_unknown_case_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure", "--case", "WAN-99"])

    def test_convergence(self, capsys):
        out = run_cli(
            capsys, "convergence", "--scale", "700", "--sm1", "0.01"
        )
        assert "final SM" in out

    def test_synth_writes_trace(self, capsys, tmp_path):
        path = tmp_path / "t.npz"
        out = run_cli(
            capsys, "synth", "--case", "WAN-3", "-n", "3000", "-o", str(path)
        )
        assert "3000 heartbeats" in out
        trace = HeartbeatTrace.load(path)
        assert trace.total_sent == 3000
        assert trace.name == "WAN-3"

    def test_scan(self, capsys):
        out = run_cli(capsys, "scan", "--nodes", "20", "--horizon", "20")
        assert "accuracy vs ground truth" in out

    def test_ablation_window(self, capsys):
        out = run_cli(
            capsys,
            "ablation-window",
            "--scale",
            "500",
            "--sizes",
            "50",
            "200",
        )
        assert "bertier" in out and "WS" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_consensus(self, capsys):
        out = run_cli(capsys, "consensus", "-n", "3", "--crashes", "1")
        assert "agreement  : True" in out
        assert "terminated : True" in out

    def test_consensus_detector_spec(self, capsys):
        out = run_cli(
            capsys,
            "consensus",
            "-n",
            "3",
            "--crashes",
            "1",
            "--detector",
            "chen:alpha=0.5,window=10",
        )
        assert "terminated : True" in out

    def test_scan_detector_spec(self, capsys):
        out = run_cli(
            capsys,
            "scan",
            "--nodes",
            "10",
            "--horizon",
            "20",
            "--detector",
            "fixed:timeout=0.5",
        )
        assert "accuracy vs ground truth" in out

    def test_live(self, capsys):
        out = run_cli(
            capsys,
            "live",
            "--detector",
            "chen:alpha=0.5,window=10",
            "--nodes",
            "2",
            "--duration",
            "1.5",
            "--crash-at",
            "0.7",
            "--poll",
            "0.3",
        )
        assert "live monitor on" in out
        assert "crashed node-00" in out
        assert "final peer view" in out
        assert "node-01" in out

    def test_bad_detector_spec_exits(self, capsys):
        with pytest.raises(SystemExit, match="bad --detector"):
            main(["live", "--detector", "nosuch:alpha=1"])

    def test_run_config(self, capsys, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(
            "[[trace]]\n"
            'name = "wan1"\n'
            'profile = "WAN-1"\n'
            "n = 2000\n"
            "[[sweep]]\n"
            'detector = "chen"\n'
            "grid = [0.1, 0.5]\n"
            "params = { window = 100 }\n"
        )
        out = run_cli(
            capsys, "run", str(config), "--output", str(tmp_path / "curves")
        )
        assert "2 replay jobs" in out
        assert "detector: chen" in out
        assert "ran 2 replay jobs" in out and "serial" in out
        assert "CURVE_wan1_chen.json" in out and "manifest.json" in out
        assert (tmp_path / "curves" / "CURVE_wan1_chen.json").exists()

    def test_run_bad_config_exits(self, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(
            "[[trace]]\nname = 'a'\nprofile = 'WAN-99'\n"
            "[[sweep]]\ndetector = 'chen'\n"
        )
        with pytest.raises(SystemExit, match="unknown profile"):
            main(["run", str(config)])


POISONED_CONFIG = (
    "[[trace]]\n"
    'name = "wan1"\n'
    'profile = "WAN-1"\n'
    "n = 2000\n"
    "[[sweep]]\n"
    'detector = "chen"\n'
    "grid = [0.1, 0.5]\n"
    "params = { window = 100 }\n"
    "[[sweep]]\n"
    # A window far beyond the trace length fails inside the replay
    # kernel on every attempt — a genuinely poisoned grid point.
    'detector = "chen:alpha=0.1,window=10000000"\n'
    'name = "bad"\n'
    "grid = [0.1]\n"
)

CLEAN_CONFIG = (
    "[[trace]]\n"
    'name = "wan1"\n'
    'profile = "WAN-1"\n'
    "n = 2000\n"
    "[[sweep]]\n"
    'detector = "chen"\n'
    "grid = [0.1, 0.3, 0.5]\n"
    "params = { window = 100 }\n"
)


class TestRunExitCodes:
    """The documented contract: 0 clean, 3 quarantined, 1 hard failure."""

    def test_clean_run_exits_zero(self, capsys, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(CLEAN_CONFIG)
        assert main(["run", str(config), "--no-archive", "--no-cache"]) == 0

    def test_fail_fast_raises_systemexit(self, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(POISONED_CONFIG)
        with pytest.raises(SystemExit, match="failed"):
            main(["run", str(config), "--no-archive", "--no-cache"])

    def test_quarantine_exits_three_with_summary(self, capsys, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(POISONED_CONFIG)
        rc = main(
            ["run", str(config), "--no-archive", "--no-cache",
             "--on-failure", "continue"]
        )
        out = capsys.readouterr().out
        assert rc == 3
        assert "1 quarantined job(s)" in out
        assert "sweep='bad'" in out
        assert "exiting 3" in out

    def test_allow_failures_exits_zero(self, capsys, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(POISONED_CONFIG)
        rc = main(
            ["run", str(config), "--no-archive", "--no-cache",
             "--on-failure", "continue", "--allow-failures"]
        )
        assert rc == 0
        assert "quarantined" in capsys.readouterr().out

    def test_bad_shard_exits(self, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(CLEAN_CONFIG)
        with pytest.raises(SystemExit, match="--shard"):
            main(["run", str(config), "--shard", "3/3"])
        with pytest.raises(SystemExit, match="--shard"):
            main(["run", str(config), "--shard", "one/three"])

    def test_bad_policy_flag_exits(self, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(CLEAN_CONFIG)
        with pytest.raises(SystemExit, match="timeout"):
            main(["run", str(config), "--timeout", "-1"])


class TestResumeAndMergeCLI:
    def test_resume_reuses_cached_work(self, capsys, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(CLEAN_CONFIG)
        out_dir = str(tmp_path / "curves")
        run_cli(capsys, "run", str(config), "--output", out_dir)
        out = run_cli(
            capsys, "run", str(config), "--output", out_dir, "--resume"
        )
        assert "resume: " in out
        assert "3 hit(s), 0 miss(es)" in out

    def test_resume_conflicts_with_no_cache(self, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(CLEAN_CONFIG)
        with pytest.raises(SystemExit, match="resume"):
            main(["run", str(config), "--resume", "--no-cache"])

    def test_shard_runs_then_merge(self, capsys, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(CLEAN_CONFIG)
        out_dir = str(tmp_path / "curves")
        for i in range(2):
            out = run_cli(
                capsys, "run", str(config), "--output", out_dir,
                "--shard", f"{i}/2",
            )
            assert f"(shard {i}/2)" in out
            assert f"shard-{i}-of-2" in out
        out = run_cli(capsys, "merge", str(config), "--output", out_dir)
        assert "merged 3 cached grid points" in out
        merged = tmp_path / "curves" / "CURVE_wan1_chen.json"
        assert merged.exists()

    def test_merge_before_shards_complete_exits(self, capsys, tmp_path):
        config = tmp_path / "exp.toml"
        config.write_text(CLEAN_CONFIG)
        out_dir = str(tmp_path / "curves")
        run_cli(
            capsys, "run", str(config), "--output", out_dir, "--shard", "0/2"
        )
        with pytest.raises(SystemExit, match="missing from the cache"):
            main(["merge", str(config), "--output", out_dir])
