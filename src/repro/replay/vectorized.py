"""Closed-form vectorized freshness-point computations.

Each function maps a :class:`~repro.traces.trace.MonitorView` (arrival
times + sequence numbers of the received heartbeats) to the array of
freshness points ``FP[r]`` the corresponding streaming detector would
produce — the value fixed after heartbeat ``r`` arrives, guarding the gap
until the next arrival.

Key identities used (derivations in the docstrings):

* Chen's Eq. (2) over a window reduces to
  ``EA = mean(A) + Δ·(s_next − mean(s))`` — two sliding means, computed by
  cumulative sums on *origin-shifted* values to avoid catastrophic
  cancellation on long traces.
* Bertier's Eqs. (5-6) are first-order linear recurrences
  ``y_k = (1−γ)·y_{k−1} + γ·u_k``, solved in one pass each by
  :func:`scipy.signal.lfilter`.
* The φ threshold inverts to a *scalar* normal quantile:
  ``FP = A + μ + σ·ndtri(1 − 10^{−Φ})`` — the float64 rounding cutoff at
  ``Φ ≳ 15.95`` (``1 − 10^{−Φ} == 1.0``) is deliberately preserved, as the
  paper leans on it ("rounding errors prevent computing points in the
  conservative range").
* SFD's margin changes only at slot boundaries, so its replay is a loop
  over ~(heartbeats/slot) slots with vectorized work inside each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.signal import lfilter
from scipy.special import ndtri

from repro.errors import ConfigurationError
from repro.core.feedback import (
    FeedbackController,
    FeedbackDriver,
    InfeasiblePolicy,
    SlotConfig,
    TuningRecord,
    TuningStatus,
)
from repro.detectors.ml import ML_JITTER_FLOOR, OnlineArrivalPredictor
from repro.detectors.phi import SIGMA_FLOOR
from repro.qos.spec import QoSRequirements, Satisfaction
from repro.traces.trace import MonitorView

__all__ = [
    "chen_expected_arrivals",
    "chen_freshness",
    "bertier_freshness",
    "phi_freshness",
    "quantile_freshness",
    "fixed_freshness",
    "ml_prediction_arrays",
    "ml_freshness",
    "sfd_freshness",
    "SFDReplay",
]


def _require_view(view: MonitorView, minimum: int) -> None:
    if len(view) < minimum:
        raise ConfigurationError(
            f"monitor view has {len(view)} heartbeats, need >= {minimum}"
        )


def _trailing(x: np.ndarray, w: int) -> tuple[np.ndarray, np.ndarray]:
    """Sliding sums ``s[r] = Σ x[max(0, r−w+1) .. r]`` and window counts."""
    c = np.empty(x.size + 1, dtype=np.float64)
    c[0] = 0.0
    np.cumsum(x, out=c[1:])
    idx = np.arange(x.size)
    lo = np.maximum(idx - w + 1, 0)
    return c[idx + 1] - c[lo], (idx - lo + 1).astype(np.float64)


def chen_expected_arrivals(
    view: MonitorView,
    window: int,
    nominal_interval: float | None = None,
) -> np.ndarray:
    """``EA[r]``: Chen's prediction for the heartbeat after received index r.

    Matches :class:`~repro.detectors.estimation.ChenEstimator` over the
    (possibly still-filling) window ending at ``r``; ``EA[0]`` is NaN (a
    single sample predicts nothing).
    """
    _require_view(view, 2)
    if window < 2:
        raise ConfigurationError(f"window must be >= 2, got {window!r}")
    arrivals = view.arrivals
    seq = view.seq.astype(np.float64)
    # Origin-shift to keep cumulative sums small (cancellation control).
    a0, s0 = arrivals[0], seq[0]
    rel_a = arrivals - a0
    rel_s = seq - s0
    sum_a, cnt = _trailing(rel_a, window)
    sum_s, _ = _trailing(rel_s, window)
    mean_a = sum_a / cnt + a0
    mean_s = sum_s / cnt + s0
    idx = np.arange(arrivals.size)
    lo = np.maximum(idx - window + 1, 0)
    if nominal_interval is not None:
        delta = np.full(arrivals.size, float(nominal_interval))
    else:
        span_a = arrivals - arrivals[lo]
        span_s = seq - seq[lo]
        with np.errstate(divide="ignore", invalid="ignore"):
            delta = span_a / span_s
    ea = mean_a + delta * (seq + 1.0 - mean_s)
    ea[0] = np.nan
    return ea


def chen_freshness(
    view: MonitorView,
    alpha: float,
    *,
    window: int = 1000,
    nominal_interval: float | None = None,
) -> np.ndarray:
    """Chen FD freshness points: ``FP[r] = EA[r] + α`` (Eq. 3)."""
    if alpha < 0:
        raise ConfigurationError(f"alpha must be >= 0, got {alpha!r}")
    return chen_expected_arrivals(view, window, nominal_interval) + float(alpha)


def bertier_freshness(
    view: MonitorView,
    *,
    beta: float = 1.0,
    phi: float = 4.0,
    gamma: float = 0.1,
    window: int = 1000,
    nominal_interval: float | None = None,
) -> np.ndarray:
    """Bertier FD freshness points (Eqs. 4-8) via two ``lfilter`` passes.

    The EWMA recurrences ``delay_k = (1−γ)delay_{k−1} + γ e_k`` and
    ``var_k = (1−γ)var_{k−1} + γ|e_k − delay_{k−1}|`` are linear constant-
    coefficient filters; ``lfilter([γ], [1, −(1−γ)], u)`` solves each in a
    single C pass.  Error samples start at received index 2 (the first
    prediction needs two samples), matching the streaming detector.
    """
    _require_view(view, 3)
    if not (0.0 < gamma <= 1.0):
        raise ConfigurationError(f"gamma must lie in (0, 1], got {gamma!r}")
    arrivals = view.arrivals
    seq = view.seq
    ea = chen_expected_arrivals(view, window, nominal_interval)
    # Raw error of the prediction made at r−1 for the heartbeat received at
    # r, shifted by any loss gap at the estimated interval (see
    # BertierFD._ingest).
    idx = np.arange(arrivals.size)
    lo = np.maximum(idx - window + 1, 0)
    if nominal_interval is not None:
        delta = np.full(arrivals.size, float(nominal_interval))
    else:
        with np.errstate(divide="ignore", invalid="ignore"):
            delta = (arrivals - arrivals[lo]) / (seq - seq[lo]).astype(np.float64)
    gaps = (seq[1:] - seq[:-1] - 1).astype(np.float64)
    e = arrivals[1:] - (ea[:-1] + gaps * delta[:-1])  # e[j] ~ heartbeat j+1
    e = e[1:]  # first usable error is for received index 2
    b, a = [gamma], [1.0, -(1.0 - gamma)]
    delay = lfilter(b, a, e)
    delay_prev = np.empty_like(delay)
    delay_prev[0] = 0.0
    delay_prev[1:] = delay[:-1]
    var = lfilter(b, a, np.abs(e - delay_prev))
    margin = np.zeros(arrivals.size, dtype=np.float64)
    margin[2:] = beta * delay + phi * var
    fp = ea + margin
    return fp


def phi_freshness(
    view: MonitorView,
    threshold: float,
    *,
    window: int = 1000,
) -> np.ndarray:
    """φ FD equivalent freshness points.

    ``φ(t) > Φ ⟺ t > A_r + μ_r + σ_r·ndtri(1 − 10^{−Φ})``; μ/σ are the
    windowed inter-arrival moments after heartbeat ``r`` (population
    variance, like :class:`~repro.detectors.window.SampleWindow`).
    Returns all-``inf`` beyond the float64 threshold cutoff.
    """
    _require_view(view, 2)
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be > 0, got {threshold!r}")
    arrivals = view.arrivals
    n = arrivals.size
    fp = np.full(n, np.nan, dtype=np.float64)
    p = 1.0 - 10.0 ** (-float(threshold))
    if p >= 1.0:
        # Paper-faithful conservative-range cutoff.
        fp[1:] = np.inf
        return fp
    z = float(ndtri(p))
    x = np.diff(arrivals)  # x[j] = inter-arrival ending at heartbeat j+1
    sum_x, cnt = _trailing(x, window)
    sum_x2, _ = _trailing(x * x, window)
    mean = sum_x / cnt
    var = sum_x2 / cnt - mean * mean
    sigma = np.sqrt(np.maximum(var, 0.0))
    np.maximum(sigma, SIGMA_FLOOR, out=sigma)
    fp[1:] = arrivals[1:] + mean + sigma * z
    return fp


def quantile_freshness(
    view: MonitorView,
    quantile: float,
    *,
    window: int = 1000,
    chunk: int = 8192,
) -> np.ndarray:
    """Quantile-timeout FD freshness points (the [34-35] family).

    ``FP[r] = A_r + Quantile_q(trailing inter-arrivals)``.  Sliding
    quantiles have no O(1) update, so this runs
    :func:`numpy.lib.stride_tricks.sliding_window_view` +
    ``np.quantile`` in row blocks of ``chunk`` to bound memory at
    ``chunk × window`` floats — O(n·window) work, still far faster than
    the streaming loop.
    """
    _require_view(view, 2)
    if not (0.0 < quantile <= 1.0):
        raise ConfigurationError(f"quantile must lie in (0, 1], got {quantile!r}")
    arrivals = view.arrivals
    n = arrivals.size
    fp = np.full(n, np.nan, dtype=np.float64)
    x = np.diff(arrivals)
    q = float(quantile)
    # Partial windows for r < window: quantile over x[:r].
    head = min(window, x.size)
    for j in range(1, head):
        fp[j] = arrivals[j] + float(np.quantile(x[:j], q))
    if x.size >= window:
        sw = np.lib.stride_tricks.sliding_window_view(x, window)
        out = np.empty(sw.shape[0], dtype=np.float64)
        for lo in range(0, sw.shape[0], chunk):
            hi = min(lo + chunk, sw.shape[0])
            out[lo:hi] = np.quantile(sw[lo:hi], q, axis=1)
        fp[window:] = arrivals[window:] + out
    return fp


def fixed_freshness(view: MonitorView, timeout: float) -> np.ndarray:
    """Fixed-timeout baseline freshness points: ``FP[r] = A_r + timeout``.

    The static freshness interval of Section II-B — no estimator, so every
    received heartbeat (including the first) fixes a point.
    """
    _require_view(view, 2)
    if timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0, got {timeout!r}")
    fp = np.full(view.arrivals.size, np.nan)
    fp[1:] = view.arrivals[1:] + float(timeout)
    fp[0] = view.arrivals[0] + float(timeout)
    return fp


def ml_prediction_arrays(
    view: MonitorView,
    *,
    lr: float = 0.05,
    window: int = 16,
    decay: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-index learned gap predictions and jitter scales for a view.

    Runs the *same* sequential NLMS core the streaming
    :class:`~repro.detectors.ml.MLFD` uses
    (:class:`~repro.detectors.ml.OnlineArrivalPredictor`) over
    ``np.diff(arrivals)``, so ``pred[r]``/``jitter[r]`` are bit-identical
    to the streaming model's state after heartbeat ``r`` by construction
    — the learned recursion has no closed form to vectorize, exactly as
    SFD's feedback loop doesn't.  Index 0 is NaN (no gap yet).

    The arrays are margin-independent: every freshness sweep of the
    family reuses one pass (see
    :class:`repro.analysis.fastsweep.MLSweeper`).
    """
    _require_view(view, 2)
    arrivals = view.arrivals
    n = arrivals.size
    pred = np.full(n, np.nan, dtype=np.float64)
    jit = np.full(n, np.nan, dtype=np.float64)
    predictor = OnlineArrivalPredictor(lr=lr, window=window, decay=decay)
    gaps = np.diff(arrivals)
    update = predictor.update
    predict = predictor.predict
    for j in range(1, n):
        update(gaps[j - 1])
        pred[j] = predict()
        jit[j] = predictor.jitter
    return pred, jit


def ml_freshness(
    view: MonitorView,
    margin: float,
    *,
    lr: float = 0.05,
    window: int = 16,
    decay: float = 0.1,
) -> np.ndarray:
    """ML FD freshness points: ``FP[r] = A_r + ŷ_r + margin·(jitter_r+floor)``.

    The elementwise combination matches the streaming detector's
    ``deadline`` arithmetic operation for operation (same addends, same
    rounding), so the result is bit-identical to a streaming replay.
    """
    if margin < 0:
        raise ConfigurationError(f"margin must be >= 0, got {margin!r}")
    pred, jit = ml_prediction_arrays(view, lr=lr, window=window, decay=decay)
    return view.arrivals + (pred + float(margin) * (jit + ML_JITTER_FLOOR))


@dataclass
class SFDReplay:
    """Outcome of a vectorized SFD replay.

    Attributes
    ----------
    freshness:
        ``FP[r]`` array aligned with the view (NaN before warm-up).
    final_margin:
        The tuned ``SM`` after the last slot.
    status:
        Feedback state at the end of the run.
    trace:
        Per-slot :class:`~repro.core.sfd.TuningRecord` history.
    """

    freshness: np.ndarray
    final_margin: float
    status: TuningStatus
    trace: list[TuningRecord] = field(default_factory=list)


def sfd_freshness(
    view: MonitorView,
    requirements: QoSRequirements,
    *,
    sm1: float | None = None,
    alpha: float = 0.1,
    beta: float = 0.5,
    window: int = 1000,
    nominal_interval: float | None = None,
    slot: SlotConfig | None = None,
    policy: InfeasiblePolicy = InfeasiblePolicy.STOP,
    sm_bounds: tuple[float, float] = (0.0, math.inf),
) -> SFDReplay:
    """SFD freshness points with the per-slot feedback of Eqs. (11-13).

    Semantics mirror :class:`repro.core.sfd.SFD` exactly: accounting starts
    at the warm-up boundary (received index ``window − 1``); the margin
    adjusts once every ``slot.heartbeats`` received heartbeats based on the
    *cumulative* measured QoS; detection-time samples use the sender
    timestamps carried by the trace.
    """
    slot = slot if slot is not None else SlotConfig()
    if sm1 is None:
        sm1 = alpha
    lo_b, hi_b = sm_bounds
    if not (0.0 <= lo_b <= hi_b):
        raise ConfigurationError(f"invalid sm_bounds {sm_bounds!r}")
    _require_view(view, window + 1)
    arrivals = view.arrivals
    sends = view.send_times
    n = arrivals.size
    r0 = window - 1  # first index with a full window (streaming `ready`)
    ea = chen_expected_arrivals(view, window, nominal_interval)
    base_td = ea - sends  # TD[r] = FP[r] − σ_r = (EA[r] − σ_r) + SM
    driver = FeedbackDriver(
        FeedbackController(requirements, alpha=alpha, beta=beta, policy=policy),
        slot,
    )
    sm = min(max(float(sm1), lo_b), hi_b)
    fp = np.full(n, np.nan, dtype=np.float64)
    records: list[TuningRecord] = []
    # Cumulative accounting scalars (mirror MistakeAccumulator): mistakes
    # are attributed to the *revealing* arrival (streaming discovers a late
    # heartbeat when it arrives), so a slot snapshot at arrival `stop−1`
    # has seen exactly the reveals with index <= stop−1.
    td_sum = 0.0
    td_count = 0
    mistakes = 0
    mistake_time = 0.0
    t_begin = float(arrivals[r0])
    slot_index = 0
    start = r0
    while start < n:
        stop = min(start + slot.heartbeats, n)  # segment [start, stop)
        seg = slice(start, stop)
        fp[seg] = ea[seg] + sm
        td_sum += float(np.sum(base_td[seg])) + sm * (stop - start)
        td_count += stop - start
        # Reveals in this segment: arrivals j in (start, stop) check the
        # guard fp[j−1] (possibly written with the previous slot's margin;
        # fp is filled progressively so that value is already final).  The
        # first segment's first reveal is r0+1.
        j0 = start + 1 if start == r0 else start
        if stop > j0:
            gap = arrivals[j0:stop] - np.maximum(
                fp[j0 - 1 : stop - 1], arrivals[j0 - 1 : stop - 1]
            )
            pos = gap > 0.0
            mistakes += int(np.count_nonzero(pos))
            mistake_time += float(np.sum(gap[pos]))
        if stop - start == slot.heartbeats:
            # Full slot completed: streaming adjusts at the arrival of the
            # slot's last heartbeat (index stop−1).
            now = float(arrivals[stop - 1])
            before = sm
            delta, snapshot = driver.end_slot(
                t_begin, now, mistakes, mistake_time, td_sum, td_count
            )
            slot_index += 1
            if snapshot is not None:
                sm = min(max(sm + delta, lo_b), hi_b)
                records.append(
                    TuningRecord(
                        slot=slot_index,
                        time=now,
                        sm_before=before,
                        sm_after=sm,
                        decision=driver.controller.last_decision
                        or Satisfaction.STABLE,
                        qos=snapshot,
                        status=driver.status,
                    )
                )
        start = stop
    return SFDReplay(
        freshness=fp,
        final_margin=sm,
        status=driver.status,
        trace=records,
    )
