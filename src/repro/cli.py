"""Command-line interface: regenerate the paper's experiments directly.

Everything the benchmark suite does is also reachable without pytest::

    python -m repro table1
    python -m repro table2 [--scale 64] [--seed 2012]
    python -m repro figure --case WAN-1 [--scale 64] [--jobs 4]
    python -m repro run experiments.toml [--jobs 4] [--output DIR]
                  [--timeout S] [--retries N] [--on-failure continue]
                  [--resume] [--shard I/N]
    python -m repro merge experiments.toml [--output DIR]
    python -m repro ablation-window [--scale 64]
    python -m repro convergence [--sm1 0.005 1.8]
    python -m repro synth --case WAN-3 -o wan3.npz [-n 100000]
    python -m repro scan [--nodes 120] [--horizon 60]
    python -m repro live [--detector "chen:alpha=0.5"] [--duration 5]
    python -m repro chaos [--duration 12] [--crash-at 6 --restart-at 8]
    python -m repro metrics http://127.0.0.1:9464/metrics [--json]
    python -m repro top --demo [--interval 1] [--iterations 5]

Each subcommand prints the same rows/series the corresponding benchmark
archives under ``benchmarks/results/``.

Runtime subcommands (``live``, ``chaos``, ``consensus``, ``scan``) take
``--detector <spec>`` where ``<spec>`` is a registry spec string —
``family:key=value,...`` over the families in
:mod:`repro.detectors.registry` (``chen``, ``bertier``, ``phi``, ``sfd``,
``fixed``, ``quantile``, ``ml``, plus anything registered at runtime),
e.g. ``"chen:alpha=0.5"``, ``"phi:threshold=4.0,window=10"``,
``"ml:lr=0.05,window=16,margin=2.0"``,
``"sfd:td=0.9,mr=0.35,qap=0.99,slot=100"``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import (
    default_setup,
    format_figure,
    format_table,
    run_figure,
    scaled_heartbeats,
    table1_rows,
    table2_rows,
    window_ablation,
)
from repro.core import SlotConfig
from repro.qos.spec import QoSRequirements
from repro.replay import SFDSpec, replay
from repro.traces import ALL_PROFILES, synthesize

__all__ = ["main"]

_PROFILES = {p.name: p for p in ALL_PROFILES}


def _profile(name: str):
    try:
        return _PROFILES[name]
    except KeyError:
        raise SystemExit(
            f"unknown case {name!r}; choose from {', '.join(_PROFILES)}"
        )


def _scaled(profile, scale: float | None) -> int:
    return scaled_heartbeats(profile, scale)


def cmd_table1(args: argparse.Namespace) -> None:
    print(format_table(table1_rows(), title="Table I: summary of the WAN experiments"))


def cmd_table2(args: argparse.Namespace) -> None:
    traces = [
        synthesize(p, n=_scaled(p, args.scale), seed=args.seed)
        for p in ALL_PROFILES
    ]
    print(
        format_table(
            table2_rows(traces), title="Table II (regenerated, scaled traces)"
        )
    )


def _executor(jobs: int | None):
    """Map a ``--jobs`` value onto an executor (None/1 → serial)."""
    if jobs is None or jobs == 1:
        return None
    from repro.exp import ProcessPoolExecutor

    return ProcessPoolExecutor(jobs=jobs)


def cmd_figure(args: argparse.Namespace) -> None:
    profile = _profile(args.case)
    setup = default_setup(profile, seed=args.seed)
    if args.scale is not None:
        import dataclasses

        setup = dataclasses.replace(
            setup, n_heartbeats=_scaled(profile, args.scale)
        )
    result = run_figure(setup, executor=_executor(args.jobs))
    print(
        format_figure(
            result.curves,
            title=f"{profile.name}: MR/QAP vs detection time "
            f"({setup.heartbeats()} heartbeats, seed {setup.seed})",
        )
    )
    if args.csv:
        from repro.analysis import export_figure_csv

        written = export_figure_csv(
            result.curves, args.csv, prefix=profile.name.lower()
        )
        print(f"\nwrote {len(written)} CSV series to {args.csv}/")


def _parse_shard(text: str) -> tuple[int, int]:
    """``"i/N"`` → ``(i, N)`` with ``0 <= i < N`` (0-based worker index)."""
    head, sep, tail = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(head), int(tail)
    except ValueError:
        raise SystemExit(
            f"bad --shard {text!r}: expected i/N (e.g. 0/3, 1/3, 2/3)"
        ) from None
    if count < 1 or not (0 <= index < count):
        raise SystemExit(f"bad --shard {text!r}: need 0 <= i < N")
    return index, count


def _policy_from_args(args: argparse.Namespace, base):
    """Merge --timeout/--retries/--backoff/--on-failure over the config's
    [run.failures] policy; None when no flag was given (config wins)."""
    overrides: dict[str, object] = {}
    if args.timeout is not None:
        overrides["timeout"] = args.timeout
    if args.retries is not None:
        overrides["max_retries"] = args.retries
    if args.backoff is not None:
        overrides["backoff"] = args.backoff
    if args.on_failure is not None:
        overrides["mode"] = args.on_failure.replace("-", "_")
    if not overrides:
        return None
    import dataclasses

    from repro.errors import ConfigurationError
    from repro.exp import FailurePolicy

    try:
        return dataclasses.replace(base or FailurePolicy(), **overrides)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


def cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.exp import (
        ExecutorBrokenError,
        JobFailedError,
        load_config,
        run_config,
    )

    try:
        config = load_config(args.config)
    except Exception as exc:
        raise SystemExit(f"cannot load {args.config}: {exc}")
    policy = _policy_from_args(args, config.policy)
    shard = _parse_shard(args.shard) if args.shard else None
    print(
        f"{config.path}: {len(config.traces)} trace(s), "
        f"{len(config.sweeps)} sweep(s), {len(config.plan)} replay jobs"
        + (f" (shard {shard[0]}/{shard[1]})" if shard else "")
    )
    try:
        outcome = run_config(
            config,
            jobs=args.jobs,
            output=args.output,
            archive=not args.no_archive,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            policy=policy,
            shard=shard,
            resume=args.resume,
        )
    except (JobFailedError, ExecutorBrokenError, ConfigurationError) as exc:
        raise SystemExit(str(exc))
    for trace_key in outcome.result.curves:
        print()
        print(
            format_figure(
                outcome.result.trace_curves(trace_key),
                title=f"{trace_key}: swept QoS curves",
            )
        )
    mode = "serial" if outcome.jobs == 1 else f"{outcome.jobs} worker processes"
    print(
        f"\nran {outcome.n_jobs} replay jobs in {outcome.elapsed:.2f}s ({mode})"
    )
    if outcome.cache is not None:
        label = "resume: " if outcome.resumed else "cache: "
        print(f"{label}{outcome.cache}")
    for path in outcome.written:
        print(f"archived {path}")
    if outcome.failures:
        print()
        print(outcome.failures.summary())
        if not args.allow_failures:
            print(
                "exiting 3: partial curves (pass --allow-failures to accept, "
                "or re-run to retry the quarantined jobs)"
            )
            return 3
    return 0


def cmd_merge(args: argparse.Namespace) -> None:
    from repro.errors import ConfigurationError
    from repro.exp import load_config, merge_config

    try:
        config = load_config(args.config)
    except Exception as exc:
        raise SystemExit(f"cannot load {args.config}: {exc}")
    try:
        outcome = merge_config(
            config, output=args.output, cache_dir=args.cache_dir
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc))
    print(
        f"merged {outcome.n_jobs} cached grid points into "
        f"{len(outcome.result.curves)} trace(s) "
        f"({len(outcome.written) - 1} curve file(s))"
    )
    for path in outcome.written:
        print(f"archived {path}")


def cmd_ablation_window(args: argparse.Namespace) -> None:
    profile = _profile(args.case)
    out = window_ablation(
        profile,
        window_sizes=tuple(args.sizes),
        seed=args.seed,
        n=_scaled(profile, args.scale) if args.scale else None,
    )
    rows = []
    for det, per_ws in out.items():
        for ws, q in per_ws.items():
            rows.append(
                {
                    "detector": det,
                    "WS": ws,
                    "TD [s]": f"{q.detection_time:.4f}",
                    "MR [1/s]": f"{q.mistake_rate:.5g}",
                    "QAP [%]": f"{q.query_accuracy * 100:.4f}",
                }
            )
    print(format_table(rows, title=f"Window-size ablation ({profile.name})"))


def cmd_convergence(args: argparse.Namespace) -> None:
    profile = _profile(args.case)
    trace = synthesize(profile, n=_scaled(profile, args.scale), seed=args.seed)
    req = QoSRequirements(
        max_detection_time=0.9, max_mistake_rate=0.35, min_query_accuracy=0.99
    )
    view = trace.monitor_view()
    for sm1 in args.sm1:
        res = replay(
            SFDSpec(
                requirements=req,
                sm1=sm1,
                alpha=0.1,
                beta=0.5,
                slot=SlotConfig(100, reset_on_adjust=True, min_slots=5),
            ),
            view,
        )
        print(
            f"SM1={sm1:g}: final SM={res.final_margin:.3f}s, "
            f"status={res.status.value}, {res.qos}"
        )
        for rec in res.tuning:
            if rec.sm_after != rec.sm_before:
                print(
                    f"  slot {rec.slot:4d} t={rec.time:9.1f}s "
                    f"SM {rec.sm_before:.3f} -> {rec.sm_after:.3f} "
                    f"[{rec.decision.name}]"
                )


def cmd_synth(args: argparse.Namespace) -> None:
    profile = _profile(args.case)
    n = args.n if args.n else _scaled(profile, args.scale)
    trace = synthesize(profile, n=n, seed=args.seed)
    trace.save(args.output)  # .bin suffix -> columnar store, else .npz
    print(f"wrote {trace.total_sent} heartbeats ({trace.name}) to {args.output}")


def cmd_trace_pack(args: argparse.Namespace) -> None:
    from repro.errors import TraceFormatError
    from repro.traces import HeartbeatTrace, TraceStore, write_columnar

    src = Path(args.input)
    try:
        if src.suffix == ".csv":
            trace = HeartbeatTrace.from_csv(src, name=args.name or src.stem)
        else:
            trace = HeartbeatTrace.load(src)
            if args.name:
                trace.name = args.name
        write_columnar(trace, args.output)
    except (OSError, TraceFormatError) as exc:
        raise SystemExit(f"cannot pack {src}: {exc}")
    store = TraceStore(args.output)
    print(
        f"packed {store.total_sent} heartbeats ({store.name}) "
        f"into {args.output} ({store.info()['file_bytes']} bytes)"
    )
    print(f"fingerprint {store.fingerprint()}")


def cmd_trace_info(args: argparse.Namespace) -> None:
    import json as _json

    from repro.errors import TraceFormatError
    from repro.traces import HeartbeatTrace, TraceStore, is_columnar

    path = Path(args.file)
    try:
        if is_columnar(path):
            info = TraceStore(path).info()
        else:
            trace = HeartbeatTrace.load(path)
            view = trace.monitor_view()
            info = {
                "path": str(path),
                "format": "npz",
                "file_bytes": path.stat().st_size,
                "name": trace.name,
                "total_sent": trace.total_sent,
                "total_received": trace.total_received,
                "view_heartbeats": len(view),
                "dropped_stale": view.dropped_stale,
                "fingerprint": view.fingerprint(),
                "meta": trace.meta,
            }
    except (OSError, TraceFormatError) as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    print(_json.dumps(info, indent=2, sort_keys=True))


def _detector_factory(spec_text: str):
    """Parse ``--detector`` through the registry into a per-node factory."""
    from repro.detectors import registry

    try:
        return registry.detector_factory(spec_text)
    except Exception as exc:
        raise SystemExit(f"bad --detector {spec_text!r}: {exc}")


def cmd_consensus(args: argparse.Namespace) -> None:
    from repro.consensus import ConsensusCluster

    values = [f"value-{i % 3}" for i in range(args.n)]
    crash_times = {p: args.crash_at for p in range(args.crashes)}
    cluster = ConsensusCluster(
        values,
        detector_factory=_detector_factory(args.detector),
        crash_times=crash_times,
        start_time=args.crash_at + 1.0 if args.crashes else 0.0,
        seed=args.seed,
    )
    out = cluster.run(horizon=args.horizon)
    print(
        f"consensus among {args.n} processes "
        f"({args.crashes} crash(es) at t={args.crash_at}s):"
    )
    print(f"  decision   : {out.decision!r}")
    print(f"  terminated : {out.terminated}")
    print(f"  agreement  : {out.agreement}")
    print(f"  validity   : {out.validity}")
    print(f"  latency    : {out.latency:.2f}s")
    print(f"  rounds     : {max(out.rounds[p] for p in out.correct)}")


def cmd_chaos(args: argparse.Namespace) -> None:
    import asyncio

    from repro.cluster.membership import NodeStatus
    from repro.net.loss import GilbertElliottLoss
    from repro.runtime import (
        ChaosScenario,
        FaultInjector,
        FaultPlan,
        LiveMonitor,
        UDPHeartbeatSender,
    )

    node = "node-p"

    async def drill() -> None:
        monitor = LiveMonitor(_detector_factory(args.detector))
        await monitor.start()
        injector = FaultInjector(monitor.address, seed=args.seed)
        await injector.start()

        def make_sender() -> UDPHeartbeatSender:
            return UDPHeartbeatSender(node, injector.address, interval=args.interval)

        senders = [make_sender()]
        await senders[-1].start()

        burst = FaultPlan(
            loss=GilbertElliottLoss.from_rate_and_burst(0.85, 16.0)
        )

        async def crash() -> None:
            await senders[-1].stop()

        async def restart() -> None:
            senders.append(make_sender())  # fresh sender: sequence resets to 0
            await senders[-1].start()

        scenario = (
            ChaosScenario()
            .burst(args.burst_at, args.burst_len, injector, burst)
            .at(args.crash_at, "sender crash (stop)", crash)
            .at(args.restart_at, "sender restart (seq reset to 0)", restart)
        )

        samples: list[tuple[float, NodeStatus, float]] = []

        async def sampler() -> None:
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            while True:
                status = monitor.status(node)
                level = 0.0
                if node in monitor.table:
                    det = monitor.table.node(node).detector
                    if det.ready:
                        level = det.suspicion(monitor.clock())
                samples.append((loop.time() - t0, status, level))
                await asyncio.sleep(0.25)

        probe = asyncio.create_task(sampler())
        await scenario.run(horizon=args.duration)
        probe.cancel()
        await senders[-1].stop()
        await injector.stop()
        restarts = monitor.table.node(node).restarts if node in monitor.table else 0
        await monitor.stop()

        print(f"chaos drill over {args.duration:g}s (seed {args.seed}):")
        for at, label in scenario.log:
            print(f"  event t={at:5.1f}s  {label}")
        print("\ntimeline:")
        for t, status, level in samples:
            print(f"  t={t:5.1f}s  {status.value:8s}  suspicion={level:6.2f}")
        s = injector.stats
        print(
            f"\ninjector: {s.received} in, {s.forwarded} out, "
            f"{s.burst_dropped} burst-dropped, {s.dropped} dropped"
        )
        print(f"restarts recognized by the membership table: {restarts}")

    asyncio.run(drill())


def cmd_live(args: argparse.Namespace) -> None:
    import asyncio

    from repro.runtime import FailureDetectionService, UDPHeartbeatSender

    factory = _detector_factory(args.detector)

    async def run() -> None:
        async with FailureDetectionService(factory) as svc:
            senders = [
                UDPHeartbeatSender(
                    f"node-{i:02d}", svc.address, interval=args.interval
                )
                for i in range(args.nodes)
            ]
            for sender in senders:
                await sender.start()
            print(
                f"live monitor on {svc.address[0]}:{svc.address[1]} "
                f"({args.nodes} senders, detector {args.detector!r})"
            )
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            crashed = False
            try:
                while (elapsed := loop.time() - t0) < args.duration:
                    if (
                        args.crash_at is not None
                        and not crashed
                        and elapsed >= args.crash_at
                    ):
                        await senders[0].stop()
                        crashed = True
                        print(f"  t={elapsed:5.1f}s  crashed {senders[0].node_id}")
                    counts = {k.value: v for k, v in svc.summary().items() if v}
                    print(f"  t={elapsed:5.1f}s  {counts}")
                    await asyncio.sleep(args.poll)
            finally:
                for sender in senders:
                    await sender.stop()
            print("\nfinal peer view:")
            for node_id in sorted(svc.peers()):
                st = svc.peer_status(node_id)
                print(
                    f"  {node_id}: {st.status.value:8s} "
                    f"suspicion={st.suspicion:6.2f} "
                    f"heartbeats={st.heartbeats}"
                )

    asyncio.run(run())


def _metrics_url(raw: str) -> str:
    """Normalize a scrape target: allow ``host:port`` and bare URLs."""
    url = raw if "://" in raw else f"http://{raw}"
    scheme, _, rest = url.partition("://")
    if "/" not in rest:
        url = f"{scheme}://{rest}/metrics"
    return url


def cmd_metrics(args: argparse.Namespace) -> None:
    import asyncio
    import json

    from repro.obs import http_get, parse_prometheus

    url = _metrics_url(args.url)
    status, body = asyncio.run(http_get(url, timeout=args.timeout))
    if status != 200:
        raise SystemExit(f"scrape of {url} failed: HTTP {status}: {body.strip()}")
    if args.json:
        print(json.dumps(parse_prometheus(body).to_dict(), indent=2, sort_keys=True))
    else:
        print(body, end="")


def cmd_top(args: argparse.Namespace) -> None:
    import asyncio

    from repro.obs import http_get, parse_prometheus, render_top

    if args.demo == (args.url is not None):
        raise SystemExit("give a scrape URL or --demo, not both (or neither)")

    async def frames(url: str, title: str) -> None:
        shown = 0
        while args.iterations is None or shown < args.iterations:
            if shown and args.interval > 0:
                await asyncio.sleep(args.interval)
            status, body = await http_get(url, timeout=args.timeout)
            if status != 200:
                raise SystemExit(f"scrape of {url} failed: HTTP {status}")
            frame = render_top(parse_prometheus(body), title=title)
            if not args.no_clear and shown:
                # Home + clear-to-end keeps already-drawn lines steady
                # instead of flashing a full-screen erase every frame.
                print("\x1b[H\x1b[J", end="")
            print(frame)
            print(flush=True)
            shown += 1

    async def run_demo() -> None:
        from repro.core.sfd import SFD, SlotConfig
        from repro.obs import Instruments, MetricsServer
        from repro.qos.spec import QoSRequirements
        from repro.runtime import LiveMonitor, UDPHeartbeatSender

        req = QoSRequirements(
            max_detection_time=1.0, max_mistake_rate=0.5, min_query_accuracy=0.9
        )
        ins = Instruments()
        monitor = LiveMonitor(
            lambda nid: SFD(req, window_size=16, slot=SlotConfig(heartbeats=20)),
            instruments=ins,
        )
        await monitor.start()
        senders = [
            UDPHeartbeatSender(
                f"demo-{i}", monitor.address, interval=0.05, instruments=ins
            )
            for i in range(args.nodes)
        ]
        for sender in senders:
            await sender.start()
        server = MetricsServer(ins.registry, events=ins.events)
        await server.start()
        print(f"demo stack up — scrape {server.url} from another terminal")
        try:
            await frames(server.url, title=f"repro top (demo @ {server.url})")
        finally:
            for sender in senders:
                await sender.stop()
            await monitor.stop()
            await server.stop()

    if args.demo:
        asyncio.run(run_demo())
    else:
        asyncio.run(frames(_metrics_url(args.url), title=f"repro top ({args.url})"))


def _audit_demo(trail: int) -> str:
    """Offline audit demo: the regime-change example, fully instrumented.

    One SFD-monitored node rides calm → degraded → recovered network
    phases through a real :class:`MembershipTable`, so the audit plane
    sees genuine status edges (wrong suspicions during the congestion
    stalls) and the feedback loop leaves a full SM(k)/Sat_k trail.
    """
    import numpy as np

    from repro.cluster import MembershipTable
    from repro.core.feedback import InfeasiblePolicy
    from repro.core.sfd import SFD, SlotConfig
    from repro.obs import (
        Instruments,
        parse_prometheus,
        render_audit,
        render_prometheus,
    )
    from repro.qos.spec import QoSRequirements

    req = QoSRequirements(
        max_detection_time=0.45, max_mistake_rate=0.05, min_query_accuracy=0.98
    )
    ins = Instruments()
    table = MembershipTable(
        ins.wrap_detector_factory(
            lambda nid: SFD(
                req,
                sm1=0.02,
                alpha=0.2,
                beta=0.5,
                window_size=50,
                slot=SlotConfig(50, reset_on_adjust=True, min_slots=2),
                policy=InfeasiblePolicy.HOLD,
            )
        ),
        on_transition=ins.on_transition,
        on_restart=ins.on_restart,
        on_stale=ins.on_stale,
    )

    rng = np.random.default_rng(11)
    phases = [
        ("calm", 800, lambda i: 0.0),
        ("degraded", 1200, lambda i: 0.5 if i % 6 == 0 else 0.0),
        ("recovered", 1500, lambda i: 0.0),
    ]
    node = "demo-node"
    t = 0.0
    seq = 0
    for _name, count, extra in phases:
        for i in range(count):
            t += 0.1
            arrival = t + 0.02 + extra(i) + float(rng.normal(0.0, 0.002))
            # Classify right before the (possibly stalled) heartbeat lands:
            # that is when an overdue node looks most suspicious, which is
            # exactly the edge the audit plane grades.
            table.statuses(arrival - 1e-3)
            ins.record_heartbeat(node, seq, t, arrival)
            table.heartbeat(node, seq, arrival, send_time=t)
            seq += 1
            if seq % 100 == 0:
                ins.audit.collect(arrival)  # periodic scrape: breach edges
    ins.audit.collect(t)

    metrics = parse_prometheus(render_prometheus(ins.registry))
    return render_audit(
        metrics, ins.events.recent(), title="repro audit (demo)", trail=trail
    )


def cmd_audit(args: argparse.Namespace) -> None:
    import asyncio
    import json

    from repro.obs import http_get, parse_prometheus, render_audit

    if args.demo == (args.url is not None):
        raise SystemExit("give a scrape URL or --demo, not both (or neither)")

    if args.demo:
        print(_audit_demo(args.trail))
        return

    base = _metrics_url(args.url).rsplit("/metrics", 1)[0]
    status, body = asyncio.run(http_get(f"{base}/metrics", timeout=args.timeout))
    if status != 200:
        raise SystemExit(
            f"scrape of {base}/metrics failed: HTTP {status}: {body.strip()}"
        )
    events: list[dict] = []
    ev_status, ev_body = asyncio.run(
        http_get(f"{base}/events", timeout=args.timeout)
    )
    if ev_status == 200:
        events = [
            json.loads(line) for line in ev_body.splitlines() if line.strip()
        ]
    print(
        render_audit(
            parse_prometheus(body),
            events,
            title=f"repro audit ({args.url})",
            trail=args.trail,
        )
    )


def cmd_scan(args: argparse.Namespace) -> None:
    import math

    from repro.cluster import ClusterScan, NodeSpec

    specs = [
        NodeSpec(
            f"node-{i:03d}",
            crash_time=(args.horizon / 2 if i % 10 == 0 else math.inf),
            loss_rate=0.02 if i % 7 == 0 else 0.0,
            interval=0.2,
        )
        for i in range(args.nodes)
    ]
    scan = ClusterScan(specs, _detector_factory(args.detector), seed=args.seed)
    report = scan.run(horizon=args.horizon)
    counts = {k.value: v for k, v in report.counts().items()}
    print(f"scan of {args.nodes} nodes after {args.horizon}s: {counts}")
    print(f"accuracy vs ground truth: {report.accuracy * 100:.1f}%")
    if report.missed:
        print(f"missed: {sorted(report.missed)}")
    if report.false_suspects:
        print(f"false suspicions: {sorted(report.false_suspects)}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the IPDPS'12 SFD experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, case_default: str | None = None):
        p.add_argument("--seed", type=int, default=2012)
        p.add_argument(
            "--scale",
            type=float,
            default=None,
            help="divide the published heartbeat count (default: REPRO_SCALE or 32)",
        )
        if case_default is not None:
            p.add_argument(
                "--case",
                default=case_default,
                help=f"WAN case ({', '.join(_PROFILES)})",
            )

    p = sub.add_parser("table1", help="Table I: WAN host pairs")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("table2", help="Table II: regenerated trace statistics")
    common(p)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("figure", help="one figure pair (Figs. 6/7, 9/10 style)")
    common(p, case_default="WAN-1")
    p.add_argument(
        "--csv",
        default=None,
        metavar="DIR",
        help="also export each series as CSV into DIR (for plotting)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan the sweep out across N worker processes (0 = all cores)",
    )
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser(
        "run", help="config-driven experiment run (TOML plan, see docs/experiments.md)"
    )
    p.add_argument("config", help="experiments.toml path")
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (overrides [run] jobs; 1 = serial, 0 = all cores)",
    )
    p.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="curve archive directory (overrides [run] output)",
    )
    p.add_argument(
        "--no-archive",
        action="store_true",
        help="print curves only, write nothing",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache directory (default: cache/ inside the archive dir)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="replay every job from scratch; neither read nor write the cache",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-job wall-clock ceiling in seconds (default: unbounded)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts per failing job, with exponential backoff",
    )
    p.add_argument(
        "--backoff",
        type=float,
        default=None,
        metavar="S",
        help="first-retry delay in seconds (doubles per retry, jittered)",
    )
    p.add_argument(
        "--on-failure",
        choices=("fail-fast", "continue"),
        default=None,
        help="fail-fast aborts on the first unrecoverable job (default); "
        "continue quarantines it and finishes the rest",
    )
    p.add_argument(
        "--allow-failures",
        action="store_true",
        help="exit 0 even when jobs were quarantined (default: exit 3)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue a killed run: completed jobs load from the cache, "
        "only missing grid points replay",
    )
    p.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run only every N-th job (offset I, 0-based); partial curves "
        "land in shard-I-of-N/ and 'repro merge' reassembles the full set",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "merge",
        help="reassemble full curves from completed --shard runs' shared cache",
    )
    p.add_argument("config", help="experiments.toml path (same as the shards ran)")
    p.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="merged archive directory (default: the run's output directory)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared result cache (default: cache/ inside the output dir)",
    )
    p.set_defaults(func=cmd_merge)

    p = sub.add_parser("ablation-window", help="Section V-C window-size study")
    common(p, case_default="WAN-JAIST")
    p.add_argument("--sizes", type=int, nargs="+", default=[100, 500, 1000, 5000])
    p.set_defaults(func=cmd_ablation_window)

    p = sub.add_parser("convergence", help="SFD self-tuning trajectories")
    common(p, case_default="WAN-JAIST")
    p.add_argument("--sm1", type=float, nargs="+", default=[0.005, 1.8])
    p.set_defaults(func=cmd_convergence)

    p = sub.add_parser(
        "synth",
        help="write a calibrated synthetic trace (.npz, or columnar .bin)",
    )
    common(p, case_default="WAN-1")
    p.add_argument("-n", type=int, default=None, help="heartbeats to generate")
    p.add_argument(
        "-o",
        "--output",
        required=True,
        help="output path (.bin writes a columnar store, anything else .npz)",
    )
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser(
        "trace", help="convert and inspect trace files (columnar store)"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    tp = trace_sub.add_parser(
        "pack", help="convert a .npz/.csv trace into a columnar store"
    )
    tp.add_argument("input", help="source trace (.npz, .csv, or columnar)")
    tp.add_argument("output", help="destination columnar store")
    tp.add_argument("--name", default=None, help="override the trace name")
    tp.set_defaults(func=cmd_trace_pack)
    ti = trace_sub.add_parser(
        "info", help="print header, columns, metadata, and fingerprint"
    )
    ti.add_argument("file", help="trace file (columnar or .npz)")
    ti.set_defaults(func=cmd_trace_info)

    def detector_opt(p: argparse.ArgumentParser, default: str):
        p.add_argument(
            "--detector",
            default=default,
            metavar="SPEC",
            help=f"registry spec string, family:key=value,... (default {default!r})",
        )

    p = sub.add_parser(
        "consensus", help="FD-driven consensus with coordinator crashes (DES)"
    )
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("-n", type=int, default=5, help="group size")
    p.add_argument("--crashes", type=int, default=1)
    p.add_argument("--crash-at", type=float, default=2.0)
    p.add_argument("--horizon", type=float, default=60.0)
    detector_opt(p, "phi:threshold=4.0,window=10")
    p.set_defaults(func=cmd_consensus)

    p = sub.add_parser(
        "live", help="live UDP monitor with demo senders (bounded duration)"
    )
    p.add_argument("--nodes", type=int, default=3, help="demo sender count")
    p.add_argument("--interval", type=float, default=0.05, help="heartbeat period [s]")
    p.add_argument("--duration", type=float, default=5.0, help="run time [s]")
    p.add_argument("--poll", type=float, default=0.5, help="summary print period [s]")
    p.add_argument(
        "--crash-at",
        type=float,
        default=None,
        help="stop the first sender at this offset [s]",
    )
    detector_opt(p, "phi:threshold=4.0,window=10")
    p.set_defaults(func=cmd_live)

    p = sub.add_parser(
        "chaos", help="live UDP chaos drill: loss burst + sender crash/restart"
    )
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("--interval", type=float, default=0.05)
    p.add_argument("--duration", type=float, default=12.0)
    p.add_argument("--burst-at", type=float, default=3.0)
    p.add_argument("--burst-len", type=float, default=2.0)
    p.add_argument("--crash-at", type=float, default=6.0)
    p.add_argument("--restart-at", type=float, default=8.0)
    detector_opt(p, "phi:threshold=2.0,window=32")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("metrics", help="scrape a repro Prometheus endpoint")
    p.add_argument("url", help="endpoint URL (host:port implies /metrics)")
    p.add_argument(
        "--json",
        action="store_true",
        help="print the parsed samples as JSON instead of raw text format",
    )
    p.add_argument("--timeout", type=float, default=5.0)
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "top", help="live per-node dashboard over a scraped metrics endpoint"
    )
    p.add_argument("url", nargs="?", default=None, help="endpoint URL to scrape")
    p.add_argument(
        "--demo",
        action="store_true",
        help="spin up a self-contained instrumented monitor + senders to watch",
    )
    p.add_argument("--nodes", type=int, default=3, help="demo sender count")
    p.add_argument("--interval", type=float, default=1.0, help="refresh period [s]")
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="frames to render before exiting (default: forever)",
    )
    p.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of redrawing in place",
    )
    p.add_argument("--timeout", type=float, default=5.0)
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "audit",
        help="QoS audit view: SLO status, SM trajectories, decision history",
    )
    p.add_argument("url", nargs="?", default=None, help="endpoint URL to scrape")
    p.add_argument(
        "--demo",
        action="store_true",
        help="run the offline regime-change scenario and audit it",
    )
    p.add_argument(
        "--trail",
        type=int,
        default=8,
        metavar="N",
        help="trailing SM(k) values to print per node (default 8)",
    )
    p.add_argument("--timeout", type=float, default=5.0)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("scan", help="PlanetLab-style cluster status scan (DES)")
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("--nodes", type=int, default=120)
    p.add_argument("--horizon", type=float, default=60.0)
    detector_opt(p, "phi:threshold=3.0,window=40")
    p.set_defaults(func=cmd_scan)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Returns the process exit code: 0 clean, 3 quarantined jobs
    (``repro run`` without ``--allow-failures``); hard failures raise
    :class:`SystemExit` with a message (exit code 1)."""
    args = build_parser().parse_args(argv)
    try:
        rc = args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    return rc or 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
