"""Low-frequency RTT probe (the paper's parallel ``ping`` process).

"A low-frequency ping process runs in parallel with the experiment as a
means to obtain a rough estimation of the round-trip time, and also to
make sure the network is connected" (Section V).  The probe sends a
request over a forward link; the responder echoes over a reverse link; the
probe logs RTT samples and gap counts, exactly the statistics (RTT avg/σ/
min/max) the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.network import SimLink

__all__ = ["PingProcess", "PingStats"]


@dataclass(frozen=True, slots=True)
class PingStats:
    """RTT summary of one probe run (the Section V-A1 numbers)."""

    sent: int
    received: int
    rtt_mean: float
    rtt_std: float
    rtt_min: float
    rtt_max: float

    @property
    def loss_rate(self) -> float:
        if self.sent == 0:
            return 0.0
        return 1.0 - self.received / self.sent

    @property
    def connected(self) -> bool:
        """The paper's connectivity check: at least one echo came back."""
        return self.received > 0


class PingProcess:
    """Round-trip probe over a forward/reverse link pair.

    Parameters
    ----------
    sim:
        Hosting simulator.
    forward, reverse:
        The two unidirectional links; the process wires their delivery
        callbacks itself.
    interval:
        Probe period, seconds (low frequency, e.g. 10 s).
    """

    def __init__(
        self,
        sim: Simulator,
        forward: SimLink,
        reverse: SimLink,
        *,
        interval: float = 10.0,
        start: float = 0.0,
    ):
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval!r}")
        self.sim = sim
        self.forward = forward
        self.reverse = reverse
        self.interval = float(interval)
        self._rtts: list[float] = []
        self._sent = 0
        forward.deliver = self._echo
        reverse.deliver = self._pong
        sim.schedule_at(max(start, 0.0), self._tick)

    def _tick(self) -> None:
        self._sent += 1
        self.forward.send(self.sim.now)  # payload = request send time
        self.sim.schedule(self.interval, self._tick)

    def _echo(self, t_sent: float) -> None:
        self.reverse.send(t_sent)

    def _pong(self, t_sent: float) -> None:
        self._rtts.append(self.sim.now - t_sent)

    def stats(self) -> PingStats:
        """Summary over the samples collected so far."""
        if not self._rtts:
            return PingStats(self._sent, 0, math.nan, math.nan, math.nan, math.nan)
        r = np.asarray(self._rtts)
        return PingStats(
            sent=self._sent,
            received=int(r.size),
            rtt_mean=float(r.mean()),
            rtt_std=float(r.std()),
            rtt_min=float(r.min()),
            rtt_max=float(r.max()),
        )
