"""Shared fixtures and helpers for the test suite.

The central helper is :func:`stream_freshness`, which replays a
:class:`~repro.traces.trace.MonitorView` through a *streaming* detector and
collects its freshness points — the semantic reference the vectorized
engine is checked against throughout the suite.

Seeded synthetic traces come from the session-scoped ``trace_factory`` /
``view_factory`` fixtures: one builder keyed on ``(kind, n, seed)`` —
``kind`` is ``"jittered"`` or a WAN profile name — with results cached
for the session, so test modules stop hand-rolling near-identical
builders and identical requests don't re-synthesize.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.synth import synthesize
from repro.traces.trace import HeartbeatTrace, MonitorView
from repro.traces.wan import WAN_1, WAN_JAIST


def stream_freshness(detector, view: MonitorView) -> np.ndarray:
    """Feed a view through a streaming detector; NaN before warm-up."""
    out = np.full(len(view), np.nan)
    for i, (s, a, st) in enumerate(
        zip(view.seq, view.arrivals, view.send_times)
    ):
        detector.observe(int(s), float(a), float(st))
        if detector.ready:
            out[i] = detector.freshness_point()
    return out


def regular_view(
    n: int = 200, interval: float = 0.1, delay: float = 0.02, start: float = 0.0
) -> MonitorView:
    """Perfectly regular heartbeats: send every ``interval``, constant delay."""
    send = start + interval * np.arange(n)
    return MonitorView(
        seq=np.arange(n, dtype=np.int64),
        arrivals=send + delay,
        send_times=send,
    )


def jittered_trace(n: int = 4000, seed: int = 0) -> HeartbeatTrace:
    """A small noisy trace (losses + jitter) for cross-checks."""
    rng = np.random.default_rng(seed)
    send = np.cumsum(rng.gamma(25.0, 0.004, size=n))
    delays = 0.01 + rng.lognormal(-5.0, 0.6, size=n)
    lost = rng.random(n) < 0.02
    delays[lost] = np.nan
    return HeartbeatTrace(send_times=send, delays=delays, name="jittered")


@pytest.fixture(scope="session")
def trace_factory():
    """Session-cached builder of seeded synthetic traces.

    ``trace_factory(kind, n=..., seed=...)`` returns a
    :class:`HeartbeatTrace` — ``kind`` is ``"jittered"`` (the small noisy
    cross-check trace above) or a WAN profile name (``"WAN-1"``,
    ``"WAN-JAIST"``, …).  Same arguments → the very same object, so
    treat the result as read-only.
    """
    from repro.traces import ALL_PROFILES, LAN_REFERENCE

    profiles = {p.name: p for p in (*ALL_PROFILES, LAN_REFERENCE)}
    built: dict[tuple[str, int, int], HeartbeatTrace] = {}

    def factory(kind: str, *, n: int, seed: int) -> HeartbeatTrace:
        key = (kind, int(n), int(seed))
        if key not in built:
            if kind == "jittered":
                built[key] = jittered_trace(n=n, seed=seed)
            elif kind in profiles:
                built[key] = synthesize(profiles[kind], n=n, seed=seed)
            else:
                raise ValueError(
                    f"unknown trace kind {kind!r}; "
                    f"use 'jittered' or one of {', '.join(profiles)}"
                )
        return built[key]

    return factory


@pytest.fixture(scope="session")
def view_factory(trace_factory):
    """Like ``trace_factory`` but returns the (cached) monitor view."""
    built: dict[tuple[str, int, int], MonitorView] = {}

    def factory(kind: str, *, n: int, seed: int) -> MonitorView:
        key = (kind, int(n), int(seed))
        if key not in built:
            built[key] = trace_factory(kind, n=n, seed=seed).monitor_view()
        return built[key]

    return factory


@pytest.fixture(scope="session")
def wan1_trace(trace_factory) -> HeartbeatTrace:
    return trace_factory(WAN_1.name, n=30_000, seed=11)


@pytest.fixture(scope="session")
def wan1_view(wan1_trace) -> MonitorView:
    return wan1_trace.monitor_view()


@pytest.fixture(scope="session")
def jaist_trace(trace_factory) -> HeartbeatTrace:
    return trace_factory(WAN_JAIST.name, n=25_000, seed=13)


@pytest.fixture(scope="session")
def jaist_view(jaist_trace) -> MonitorView:
    return jaist_trace.monitor_view()


@pytest.fixture()
def small_view(view_factory) -> MonitorView:
    return view_factory("jittered", n=3000, seed=5)
