"""The detector-family registry: one descriptor drives every layer.

The paper's generality claim — the self-tuning method "can be used in any
parametric failure detection scheme" (Section IV-A) — only holds in code
if adding a detector family is *one* change, not eight.  This module is
that single point of declaration.  A :class:`DetectorFamily` descriptor
binds together everything the rest of the library needs to host a family:

* the streaming :class:`~repro.detectors.base.FailureDetector` class (the
  semantic reference, deployable on the DES and the asyncio runtime),
* the frozen replay ``*Spec`` dataclass (with ``to_dict``/``from_dict``
  round-tripping for configs and archives),
* the vectorized freshness kernel used by :func:`repro.replay.engine.replay`,
* the default sweep grid, ordered aggressive → conservative (Section V's
  "vary its parameter from a highly aggressive behavior to a very
  conservative one"),
* a spec-string parser (``"phi:threshold=4.0,window=10"``) for CLI flags
  and config files.

Consumers dispatch through :func:`get` / :func:`get_for_spec` instead of
hard-coding families: the replay engine looks up the kernel, the sweep
harness (:func:`repro.analysis.sweep.sweep_curve`) iterates the grid, the
live runtime builds per-node detectors from parsed spec strings, and the
CLI derives its ``--detector`` option.  Third-party families plug in via
:func:`register` — after which sweeps, benchmarks, the planner, and
``python -m repro`` pick them up with no further edits (the entry-point
registry shape used for models/optimizers in training stacks, and the
extensibility route toward ML-based detectors, cf. Li & Marin 2022).

Import layering: this module sits *above* both :mod:`repro.detectors` and
:mod:`repro.replay` (it imports the spec/kernel layer at module scope);
:mod:`repro.replay.engine` therefore imports it lazily inside
:func:`~repro.replay.engine.replay` to keep the package import graph
acyclic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.core.feedback import InfeasiblePolicy, SlotConfig, TuningStatus
from repro.core.sfd import SFD, TuningRecord
from repro.detectors.base import FailureDetector
from repro.detectors.bertier import BertierFD
from repro.detectors.chen import ChenFD
from repro.detectors.fixed import FixedTimeoutFD
from repro.detectors.ml import MLFD
from repro.detectors.phi import PhiFD
from repro.detectors.quantile import QuantileFD
from repro.qos.spec import QoSRequirements
from repro.replay.engine import (
    BertierSpec,
    ChenSpec,
    FixedSpec,
    MLSpec,
    PhiSpec,
    QuantileSpec,
    SFDSpec,
)
from repro.replay.vectorized import (
    bertier_freshness,
    chen_freshness,
    fixed_freshness,
    ml_freshness,
    phi_freshness,
    quantile_freshness,
    sfd_freshness,
)
from repro.traces.trace import MonitorView

__all__ = [
    "KernelRun",
    "DetectorFamily",
    "register",
    "unregister",
    "get",
    "get_for_spec",
    "families",
    "names",
    "parse_spec",
    "spec_string",
    "make_detector",
    "detector_factory",
]


@dataclass
class KernelRun:
    """Normalized result of one vectorized kernel invocation.

    Every family's kernel — whatever its native return shape — is adapted
    to this: the freshness-point array plus the optional self-tuning
    artifacts only feedback-driven families (SFD) produce.  This is what
    lets :func:`repro.replay.engine.replay` stay family-agnostic.
    """

    freshness: np.ndarray
    tuning: list[TuningRecord] = field(default_factory=list)
    final_margin: float | None = None
    status: TuningStatus | None = None


def _coerce_value(raw: str) -> Any:
    """Parse one ``key=value`` right-hand side from a spec string."""
    low = raw.strip().lower()
    if low in ("none", "null"):
        return None
    if low == "true":
        return True
    if low == "false":
        return False
    if low == "inf":
        return math.inf
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw.strip()


@dataclass(frozen=True)
class DetectorFamily:
    """Descriptor binding one detector family across every layer.

    Attributes
    ----------
    name:
        Canonical family name (the ``Spec.detector`` tag, the curve label,
        and the spec-string prefix).
    summary:
        One-line description for ``--detector`` help and docs.
    streaming_cls:
        The event-driven :class:`~repro.detectors.base.FailureDetector`.
    spec_cls:
        The frozen replay spec dataclass (must expose ``to_dict`` /
        ``from_dict`` and a ``parameter`` property).
    kernel:
        ``kernel(view, spec) -> KernelRun``: the closed-form vectorized
        freshness computation replay dispatches to.
    default_grid:
        Default sweep values, aggressive → conservative (Section V).
    sweep_param:
        Spec field name the sweep varies (``None`` for single-point
        families like Bertier).
    build:
        ``build(spec) -> FailureDetector``: constructs the streaming
        detector configured exactly like the spec.
    parse_defaults:
        Field values assumed when a spec string omits them (lets a bare
        family name like ``"chen"`` parse).
    normalize:
        Optional hook mapping parsed key/value pairs onto spec-constructor
        kwargs (used by SFD to fold ``td``/``mr``/``qap`` into a
        :class:`~repro.qos.spec.QoSRequirements`, etc.).
    """

    name: str
    summary: str
    streaming_cls: type[FailureDetector]
    spec_cls: type
    kernel: Callable[[MonitorView, Any], KernelRun]
    default_grid: tuple[float, ...]
    sweep_param: str | None
    build: Callable[[Any], FailureDetector]
    parse_defaults: Mapping[str, Any] = field(default_factory=dict)
    normalize: Callable[[dict[str, Any]], dict[str, Any]] | None = None

    # -- spec construction --------------------------------------------- #

    def make_spec(self, **params: Any):
        """Build this family's replay spec from keyword parameters.

        Unknown keys raise :class:`~repro.errors.ConfigurationError` with
        the accepted field names, so CLI typos fail loudly.
        """
        if self.normalize is not None:
            params = self.normalize(dict(params))
        try:
            return self.spec_cls(**params)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid parameters for detector family {self.name!r}: {exc}"
            ) from exc

    def grid_spec(self, value: float, **params: Any):
        """Spec for one sweep-grid point (``value`` → :attr:`sweep_param`)."""
        if self.sweep_param is not None:
            params = {**params, self.sweep_param: value}
        return self.make_spec(**params)

    # -- streaming construction ---------------------------------------- #

    def make_detector(self, spec=None, **params: Any) -> FailureDetector:
        """Fresh streaming detector configured like ``spec`` (or params)."""
        if spec is None:
            spec = self.make_spec(**params)
        return self.build(spec)

    # -- dict round-tripping ------------------------------------------- #

    def spec_to_dict(self, spec) -> dict[str, Any]:
        return spec.to_dict()

    def spec_from_dict(self, data: Mapping[str, Any]):
        return self.spec_cls.from_dict(data)

    # -- spec-string parsing ------------------------------------------- #

    def parse(self, params: str = ""):
        """Parse the parameter part of a spec string into a spec.

        ``params`` is the text after the family name: empty, a bare value
        for the sweep parameter (``"4.0"``), or comma-separated
        ``key=value`` pairs (``"threshold=4.0,window=10"``).
        """
        kwargs: dict[str, Any] = dict(self.parse_defaults)
        params = params.strip()
        if params:
            for item in params.split(","):
                item = item.strip()
                if not item:
                    continue
                if "=" in item:
                    key, _, raw = item.partition("=")
                    key = key.strip()
                    if not key:
                        raise ConfigurationError(
                            f"empty parameter name in {self.name!r} spec: {item!r}"
                        )
                    kwargs[key] = _coerce_value(raw)
                elif self.sweep_param is not None:
                    kwargs[self.sweep_param] = _coerce_value(item)
                else:
                    raise ConfigurationError(
                        f"detector family {self.name!r} takes no bare value "
                        f"(got {item!r}); use key=value"
                    )
        return self.make_spec(**kwargs)


# --------------------------------------------------------------------- #
# kernel adapters (vectorized layer -> KernelRun)
# --------------------------------------------------------------------- #


def _chen_kernel(view: MonitorView, spec: ChenSpec) -> KernelRun:
    return KernelRun(
        chen_freshness(
            view, spec.alpha, window=spec.window, nominal_interval=spec.nominal_interval
        )
    )


def _bertier_kernel(view: MonitorView, spec: BertierSpec) -> KernelRun:
    return KernelRun(
        bertier_freshness(
            view,
            beta=spec.beta,
            phi=spec.phi,
            gamma=spec.gamma,
            window=spec.window,
            nominal_interval=spec.nominal_interval,
        )
    )


def _phi_kernel(view: MonitorView, spec: PhiSpec) -> KernelRun:
    return KernelRun(phi_freshness(view, spec.threshold, window=spec.window))


def _quantile_kernel(view: MonitorView, spec: QuantileSpec) -> KernelRun:
    return KernelRun(quantile_freshness(view, spec.quantile, window=spec.window))


def _fixed_kernel(view: MonitorView, spec: FixedSpec) -> KernelRun:
    return KernelRun(fixed_freshness(view, spec.timeout))


def _ml_kernel(view: MonitorView, spec: MLSpec) -> KernelRun:
    return KernelRun(
        ml_freshness(
            view, spec.margin, lr=spec.lr, window=spec.window, decay=spec.decay
        )
    )


def _sfd_kernel(view: MonitorView, spec: SFDSpec) -> KernelRun:
    run = sfd_freshness(
        view,
        spec.requirements,
        sm1=spec.sm1,
        alpha=spec.alpha,
        beta=spec.beta,
        window=spec.window,
        nominal_interval=spec.nominal_interval,
        slot=spec.slot,
        policy=spec.policy,
        sm_bounds=spec.sm_bounds,
    )
    return KernelRun(
        freshness=run.freshness,
        tuning=run.trace,
        final_margin=run.final_margin,
        status=run.status,
    )


# --------------------------------------------------------------------- #
# streaming builders (spec -> configured FailureDetector)
# --------------------------------------------------------------------- #


def _build_chen(spec: ChenSpec) -> ChenFD:
    return ChenFD(
        spec.alpha, window_size=spec.window, nominal_interval=spec.nominal_interval
    )


def _build_bertier(spec: BertierSpec) -> BertierFD:
    return BertierFD(
        beta=spec.beta,
        phi=spec.phi,
        gamma=spec.gamma,
        window_size=spec.window,
        nominal_interval=spec.nominal_interval,
    )


def _build_phi(spec: PhiSpec) -> PhiFD:
    return PhiFD(spec.threshold, window_size=spec.window)


def _build_quantile(spec: QuantileSpec) -> QuantileFD:
    return QuantileFD(spec.quantile, window_size=spec.window)


def _build_fixed(spec: FixedSpec) -> FixedTimeoutFD:
    return FixedTimeoutFD(spec.timeout)


def _build_ml(spec: MLSpec) -> MLFD:
    return MLFD(
        spec.margin, lr=spec.lr, window_size=spec.window, decay=spec.decay
    )


def _build_sfd(spec: SFDSpec) -> SFD:
    return SFD(
        spec.requirements,
        sm1=spec.sm1,
        alpha=spec.alpha,
        beta=spec.beta,
        window_size=spec.window,
        nominal_interval=spec.nominal_interval,
        slot=spec.slot,
        policy=spec.policy,
        sm_bounds=spec.sm_bounds,
    )


def _normalize_sfd(params: dict[str, Any]) -> dict[str, Any]:
    """Fold flat spec-string keys into SFDSpec's nested configuration.

    Accepted shorthands: ``td``/``mr``/``qap`` (the required QoS bounds of
    Eq. 1), ``slot`` (heartbeats per tuning slot), ``sm_min``/``sm_max``
    (margin clamp), ``policy`` (an :class:`InfeasiblePolicy` value name).
    """
    req = params.pop("requirements", None)
    td = params.pop("td", params.pop("max_detection_time", None))
    mr = params.pop("mr", params.pop("max_mistake_rate", None))
    qap = params.pop("qap", params.pop("min_query_accuracy", None))
    if req is None:
        base = _SFD_DEFAULT_REQUIREMENTS
        req = QoSRequirements(
            max_detection_time=base.max_detection_time if td is None else float(td),
            max_mistake_rate=base.max_mistake_rate if mr is None else float(mr),
            min_query_accuracy=base.min_query_accuracy if qap is None else float(qap),
        )
    elif td is not None or mr is not None or qap is not None:
        raise ConfigurationError(
            "give either requirements= or td/mr/qap shorthands, not both"
        )
    params["requirements"] = req
    slot = params.pop("slot", None)
    if isinstance(slot, int):
        slot = SlotConfig(heartbeats=slot)
    if slot is not None:
        params["slot"] = slot
    lo = params.pop("sm_min", None)
    hi = params.pop("sm_max", None)
    if lo is not None or hi is not None:
        params["sm_bounds"] = (
            0.0 if lo is None else float(lo),
            math.inf if hi is None else float(hi),
        )
    policy = params.get("policy")
    if isinstance(policy, str):
        try:
            params["policy"] = InfeasiblePolicy(policy.lower())
        except ValueError as exc:
            raise ConfigurationError(
                f"unknown infeasible policy {policy!r}; choose from "
                f"{', '.join(p.value for p in InfeasiblePolicy)}"
            ) from exc
    return params


#: The QoS band the repo's experiments target (Section V-A2/V-B2: detection
#: within ~0.9 s at high accuracy) — used when an SFD spec string names no
#: explicit requirement.
_SFD_DEFAULT_REQUIREMENTS = QoSRequirements(
    max_detection_time=0.9, max_mistake_rate=0.35, min_query_accuracy=0.99
)


# --------------------------------------------------------------------- #
# the registry proper
# --------------------------------------------------------------------- #

_REGISTRY: dict[str, DetectorFamily] = {}


def register(family: DetectorFamily, *, replace: bool = False) -> DetectorFamily:
    """Register a family (the third-party extension hook).

    After registration the family is live everywhere the registry is
    consulted: ``replay()`` accepts its spec, ``sweep_curve`` sweeps its
    grid, the CLI's ``--detector`` parses its spec strings, and the live
    runtime builds its streaming detectors.
    """
    if not family.name or not family.name.isidentifier():
        raise ConfigurationError(
            f"family name must be a valid identifier, got {family.name!r}"
        )
    if family.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"detector family {family.name!r} is already registered "
            "(pass replace=True to override)"
        )
    spec_detector = getattr(family.spec_cls, "detector", None)
    if spec_detector != family.name:
        raise ConfigurationError(
            f"spec class {family.spec_cls.__name__} tags detector="
            f"{spec_detector!r}, expected {family.name!r}"
        )
    _REGISTRY[family.name] = family
    return family


def unregister(name: str) -> None:
    """Remove a registered family (mainly for tests of the plugin hook)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> DetectorFamily:
    """Look up a family by name; unknown names list the registered ones."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown detector family {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def get_for_spec(spec) -> DetectorFamily:
    """The family a replay spec belongs to (via its ``detector`` tag)."""
    name = getattr(spec, "detector", None)
    if not isinstance(name, str):
        raise ConfigurationError(
            f"{type(spec).__name__} carries no detector family tag"
        )
    return get(name)


def families() -> tuple[DetectorFamily, ...]:
    """Every registered family, registration order."""
    return tuple(_REGISTRY.values())


def names() -> tuple[str, ...]:
    """Registered family names, registration order."""
    return tuple(_REGISTRY)


def parse_spec(text: str):
    """Parse a full spec string: ``"family"`` or ``"family:params"``.

    Examples::

        parse_spec("phi:threshold=4.0,window=10")
        parse_spec("chen:alpha=0.5")
        parse_spec("chen:0.5")              # bare value -> sweep parameter
        parse_spec("sfd:td=0.9,mr=0.35,qap=0.99,slot=100")
        parse_spec("bertier")               # defaults only
    """
    if not isinstance(text, str) or not text.strip():
        raise ConfigurationError(f"empty detector spec {text!r}")
    name, _, params = text.partition(":")
    return get(name.strip()).parse(params)


def spec_string(spec) -> str:
    """Canonical spec string for a spec (inverse of :func:`parse_spec`).

    Only fields differing from the family's construction defaults are
    emitted, so round-tripping ``parse_spec(spec_string(s))`` reproduces
    ``s`` while staying readable.  Nested SFD fields are flattened to the
    ``td``/``mr``/``qap``/``slot`` shorthands where possible.
    """
    family = get_for_spec(spec)
    data = spec.to_dict()
    data.pop("detector", None)
    parts = []
    if family.name == "sfd":
        req = data.pop("requirements")
        parts += [
            f"td={req['max_detection_time']!r}",
            f"mr={req['max_mistake_rate']!r}",
            f"qap={req['min_query_accuracy']!r}",
        ]
        slot = data.pop("slot")
        parts.append(f"slot={slot['heartbeats']}")
        data.pop("sm_bounds", None)
        data.pop("policy", None)
    for key, value in data.items():
        if value is None:
            continue
        if isinstance(value, float):
            # `repr` is the shortest exact round-trip form: ``float(repr(x))
            # == x`` for every finite x, where ``%g`` truncates to 6
            # significant digits and silently shifts dense sweep-grid
            # values through parse(format(spec)).
            parts.append(f"{key}={value!r}")
        else:
            parts.append(f"{key}={value}")
    return f"{family.name}:{','.join(parts)}" if parts else family.name


def make_detector(spec_or_string) -> FailureDetector:
    """Fresh streaming detector from a spec object or spec string."""
    spec = (
        parse_spec(spec_or_string)
        if isinstance(spec_or_string, str)
        else spec_or_string
    )
    return get_for_spec(spec).make_detector(spec)


def detector_factory(spec_or_string) -> Callable[[Any], FailureDetector]:
    """Per-node factory (``factory(node_id) -> FailureDetector``).

    Accepts a spec string or spec object; every call builds an
    *independent* detector, which is what membership tables and live
    monitors need.  This is how the runtime/cluster layers accept plain
    strings wherever a ``detector_factory`` callable is expected.
    """
    spec = (
        parse_spec(spec_or_string)
        if isinstance(spec_or_string, str)
        else spec_or_string
    )
    family = get_for_spec(spec)

    def factory(_node_id) -> FailureDetector:
        return family.make_detector(spec)

    factory.spec = spec  # type: ignore[attr-defined] # introspectable for logs
    return factory


def as_factory(factory_or_spec) -> Callable[[Any], FailureDetector]:
    """Coerce ``Callable | Spec | str`` to a detector factory."""
    if callable(factory_or_spec):
        return factory_or_spec
    return detector_factory(factory_or_spec)


def _grid(values: Iterable[float]) -> tuple[float, ...]:
    return tuple(float(v) for v in values)


# --------------------------------------------------------------------- #
# built-in families (Section V's cast plus the repo's baselines)
# --------------------------------------------------------------------- #

CHEN = register(
    DetectorFamily(
        name="chen",
        summary="Chen FD: windowed arrival estimator + constant margin α (Eqs. 2-3)",
        streaming_cls=ChenFD,
        spec_cls=ChenSpec,
        kernel=_chen_kernel,
        # The paper sweeps α ∈ [0, 10000] ms; geometric spacing because the
        # MR axis is logarithmic (see analysis.experiments.default_setup
        # for the profile-aware version).
        default_grid=_grid(np.geomspace(1e-3, 0.9, 16)),
        sweep_param="alpha",
        build=_build_chen,
        parse_defaults={"alpha": 0.1},
    )
)

BERTIER = register(
    DetectorFamily(
        name="bertier",
        summary="Bertier FD: Chen estimator + Jacobson margin (one point, Eqs. 4-8)",
        streaming_cls=BertierFD,
        spec_cls=BertierSpec,
        kernel=_bertier_kernel,
        default_grid=(0.0,),  # "it has no dynamic parameters" (Section V-A2)
        sweep_param=None,
        build=_build_bertier,
    )
)

PHI = register(
    DetectorFamily(
        name="phi",
        summary="φ accrual FD of Hayashibara et al. (Eqs. 9-10)",
        streaming_cls=PhiFD,
        spec_cls=PhiSpec,
        kernel=_phi_kernel,
        # Φ ∈ [0.5, 16] including values past the float64 inversion cutoff,
        # which terminate the curve exactly as in the paper.
        default_grid=_grid((0.5, 1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16)),
        sweep_param="threshold",
        build=_build_phi,
        parse_defaults={"threshold": 4.0},
    )
)

QUANTILE = register(
    DetectorFamily(
        name="quantile",
        summary="nonparametric quantile-timeout FD (the [34-35] family)",
        streaming_cls=QuantileFD,
        spec_cls=QuantileSpec,
        kernel=_quantile_kernel,
        default_grid=_grid((0.5, 0.8, 0.9, 0.95, 0.99, 0.995, 0.999, 0.9999, 1.0)),
        sweep_param="quantile",
        build=_build_quantile,
        parse_defaults={"quantile": 0.99},
    )
)

FIXED = register(
    DetectorFamily(
        name="fixed",
        summary="fixed-timeout baseline (Section II-B's static freshness interval)",
        streaming_cls=FixedTimeoutFD,
        spec_cls=FixedSpec,
        kernel=_fixed_kernel,
        default_grid=_grid(np.geomspace(0.05, 2.0, 12)),
        sweep_param="timeout",
        build=_build_fixed,
        parse_defaults={"timeout": 1.0},
    )
)

SFD_FAMILY = register(
    DetectorFamily(
        name="sfd",
        summary="the paper's Self-tuning FD: Chen estimator + QoS feedback margin",
        streaming_cls=SFD,
        spec_cls=SFDSpec,
        kernel=_sfd_kernel,
        # SM₁ list rising through the same span as Chen's α (Section V:
        # "SM₁ gradually increases"); every run self-tunes toward the
        # requirement, so the curve occupies only the target band.
        default_grid=_grid(np.geomspace(1e-3, 0.9, 10)),
        sweep_param="sm1",
        build=_build_sfd,
        normalize=_normalize_sfd,
    )
)

ML = register(
    DetectorFamily(
        name="ml",
        summary="learned FD: online NLMS arrival prediction + jitter-scaled margin (Li & Marin)",
        streaming_cls=MLFD,
        spec_cls=MLSpec,
        kernel=_ml_kernel,
        # Margin in learned-jitter units, aggressive → conservative: 0
        # trusts the raw prediction; the top of the range is comparable to
        # φ's most conservative finite thresholds on the WAN traces.
        default_grid=_grid((0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)),
        sweep_param="margin",
        build=_build_ml,
        parse_defaults={"margin": 2.0},
    )
)
