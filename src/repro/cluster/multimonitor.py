"""Multiple-monitor-multiple: quorum aggregation across monitors.

When several monitors watch the same nodes over *different* network paths
(the cross-cloud accesses of Fig. 1), their verdicts differ: a congested
path can make one monitor suspect a node other monitors still trust.  A
:class:`MonitorGroup` aggregates per-monitor
:class:`~repro.cluster.membership.MembershipTable` snapshots into a quorum
verdict, the standard way to turn unreliable local detectors into a more
accurate global one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.cluster.membership import MembershipTable, NodeStatus

__all__ = ["QuorumVerdict", "MonitorGroup"]

#: Statuses counted as "this monitor suspects the node".
_SUSPECTING = frozenset({NodeStatus.SUSPECT, NodeStatus.DEAD})


@dataclass(frozen=True, slots=True)
class QuorumVerdict:
    """Aggregated opinion about one node.

    Attributes
    ----------
    node_id:
        The node judged.
    suspecting:
        Monitors whose status is SUSPECT or DEAD.
    observing:
        Monitors with *any* verdict (UNKNOWN monitors abstain).
    crashed:
        True when ``suspecting >= quorum`` among observers.
    statuses:
        Raw per-monitor statuses, keyed by monitor name.
    """

    node_id: str
    suspecting: int
    observing: int
    crashed: bool
    statuses: dict[str, NodeStatus]


class MonitorGroup:
    """A set of named monitors voting on node liveness.

    When every member table supports ``advance`` (the sharded membership
    table), verdicts are served from a per-node cache keyed by the
    members' status epochs: one O(changed) ``advance`` per query brings
    the snapshots current, the epoch key tells us whether any member's
    opinion moved, and only moved nodes are re-aggregated.  Transition
    callbacks feed a dirty set so :meth:`crashed_nodes` re-judges exactly
    the nodes that changed instead of rescanning monitors × nodes.
    Groups containing a flat table fall back to the uncached per-node
    classification path.

    Parameters
    ----------
    quorum:
        Minimum number of suspecting monitors to declare a node crashed.
        Defaults to a strict majority of the monitors that currently have
        an opinion (abstentions excluded).
    """

    def __init__(self, quorum: int | None = None):
        if quorum is not None and quorum < 1:
            raise ConfigurationError(f"quorum must be >= 1, got {quorum!r}")
        self._quorum = quorum
        self._monitors: dict[str, MembershipTable] = {}
        #: node_id -> (epoch key, verdict); the key is the per-monitor
        #: (present, status_epoch) tuple, so any member transition or
        #: membership change of that node misses the cache.
        self._verdicts: dict[str, tuple[tuple, QuorumVerdict]] = {}
        #: Nodes whose status moved since crashed_nodes() last judged them.
        self._dirty: set[str] = set()
        #: Incrementally maintained crash roster (cached mode only).
        self._crashed: set[str] = set()
        #: Per-table node counts at the last sync; a shape change means
        #: registrations/expiries happened without transitions, which the
        #: dirty set cannot see — rebuild the roster from scratch.
        self._shape: tuple[int, ...] | None = None
        self._roster_stale = True

    def add_monitor(self, name: str, table: MembershipTable) -> None:
        if name in self._monitors:
            raise ConfigurationError(f"monitor {name!r} already in the group")
        self._monitors[name] = table
        table.add_transition_listener(self._on_member_transition)
        self._verdicts.clear()
        self._roster_stale = True

    def _on_member_transition(
        self, node_id: str, old: NodeStatus, new: NodeStatus, at: float
    ) -> None:
        self._dirty.add(node_id)

    @property
    def monitors(self) -> dict[str, MembershipTable]:
        return dict(self._monitors)

    def _required(self, observing: int) -> int:
        if self._quorum is not None:
            return self._quorum
        return observing // 2 + 1  # strict majority of opinions

    def _sync(self, now: float) -> bool:
        """Bring every member snapshot current; True when the epoch cache
        is usable (all members maintain snapshots via ``advance``)."""
        tables = self._monitors.values()
        if not all(hasattr(t, "advance") for t in tables):
            return False
        for t in tables:
            t.advance(now)
        shape = tuple(len(t) for t in tables)
        if shape != self._shape:
            self._shape = shape
            self._roster_stale = True
            self._verdicts.clear()  # drop entries for expired nodes
        return True

    def _aggregate(
        self, node_id: str, statuses: dict[str, NodeStatus]
    ) -> QuorumVerdict:
        observing = sum(1 for s in statuses.values() if s is not NodeStatus.UNKNOWN)
        suspecting = sum(1 for s in statuses.values() if s in _SUSPECTING)
        crashed = observing > 0 and suspecting >= self._required(observing)
        return QuorumVerdict(
            node_id=node_id,
            suspecting=suspecting,
            observing=observing,
            crashed=crashed,
            statuses=statuses,
        )

    def _cached_verdict(self, node_id: str) -> QuorumVerdict:
        """Epoch-keyed aggregation over already-advanced snapshots — no
        detector reads at all."""
        key_parts = []
        statuses: dict[str, NodeStatus] = {}
        for name, table in self._monitors.items():
            state = table._nodes.get(node_id)
            if state is None:
                key_parts.append(-1)
            else:
                key_parts.append(state.status_epoch)
                statuses[name] = state.last_status
        key = tuple(key_parts)
        hit = self._verdicts.get(node_id)
        if hit is not None and hit[0] == key:
            return hit[1]
        verdict = self._aggregate(node_id, statuses)
        self._verdicts[node_id] = (key, verdict)
        return verdict

    def verdict(self, node_id: str, now: float) -> QuorumVerdict:
        """Aggregate the group's opinion about ``node_id`` at ``now``."""
        if self._sync(now):
            return self._cached_verdict(node_id)
        statuses: dict[str, NodeStatus] = {}
        for name, table in self._monitors.items():
            if node_id in table:
                statuses[name] = table.node(node_id).status(now)
        return self._aggregate(node_id, statuses)

    def all_nodes(self) -> set[str]:
        """Union of node ids across all member monitors."""
        ids: set[str] = set()
        for table in self._monitors.values():
            ids.update(st.node_id for st in table.nodes())
        return ids

    def crashed_nodes(self, now: float) -> list[str]:
        """Nodes the group currently declares crashed (sorted).

        In cached mode the roster is maintained incrementally: only nodes
        dirtied by member transitions since the previous call (or all
        nodes, after a membership change) are re-judged.
        """
        if not self._sync(now):
            return sorted(
                nid for nid in self.all_nodes() if self.verdict(nid, now).crashed
            )
        if self._roster_stale:
            # First cached query, or members registered/expired nodes:
            # rebuild the roster, then go incremental.
            self._roster_stale = False
            todo = self.all_nodes()
            self._crashed.clear()
        else:
            todo = self._dirty
        self._dirty = set()
        crashed = self._crashed
        for nid in todo:
            if self._cached_verdict(nid).crashed:
                crashed.add(nid)
            else:
                crashed.discard(nid)
        return sorted(crashed)
