"""Feedback controller, slot policy, and the shared driver."""

import math

import pytest

from repro.errors import ConfigurationError, InfeasibleQoSError
from repro.core.feedback import (
    FeedbackController,
    FeedbackDriver,
    InfeasiblePolicy,
    SlotConfig,
    TuningStatus,
)
from repro.qos.spec import QoSReport, QoSRequirements, Satisfaction

REQ = QoSRequirements(
    max_detection_time=1.0, max_mistake_rate=0.1, min_query_accuracy=0.99
)


def rep(td=0.5, mr=0.05, qap=0.999):
    return QoSReport(detection_time=td, mistake_rate=mr, query_accuracy=qap)


class TestFeedbackController:
    def test_step_magnitude_is_beta_alpha(self):
        c = FeedbackController(REQ, alpha=0.2, beta=0.5)
        assert c.step_magnitude == pytest.approx(0.1)

    def test_grow_on_inaccuracy(self):
        c = FeedbackController(REQ, alpha=0.2, beta=0.5)
        assert c.decide(rep(mr=0.5)) == pytest.approx(+0.1)
        assert c.status is TuningStatus.TUNING
        assert c.adjustments == 1

    def test_shrink_on_slow_detection(self):
        c = FeedbackController(REQ, alpha=0.2, beta=0.5)
        assert c.decide(rep(td=2.0)) == pytest.approx(-0.1)
        assert c.last_decision is Satisfaction.SHRINK

    def test_stable_holds(self):
        c = FeedbackController(REQ)
        assert c.decide(rep()) == 0.0
        assert c.status is TuningStatus.STABLE

    def test_infeasible_stop_freezes(self):
        c = FeedbackController(REQ, policy=InfeasiblePolicy.STOP)
        assert c.decide(rep(td=2.0, mr=0.5)) == 0.0
        assert c.status is TuningStatus.INFEASIBLE
        # Frozen: even a satisfiable report changes nothing afterwards.
        assert c.decide(rep()) == 0.0
        assert c.status is TuningStatus.INFEASIBLE

    def test_infeasible_raise(self):
        c = FeedbackController(REQ, policy=InfeasiblePolicy.RAISE)
        with pytest.raises(InfeasibleQoSError) as ei:
            c.decide(rep(td=2.0, mr=0.5))
        assert ei.value.required is REQ

    def test_infeasible_hold_grows(self):
        c = FeedbackController(REQ, alpha=0.2, beta=0.5, policy=InfeasiblePolicy.HOLD)
        assert c.decide(rep(td=2.0, mr=0.5)) == pytest.approx(+0.1)
        assert c.status is TuningStatus.TUNING

    def test_parameter_domains(self):
        with pytest.raises(ConfigurationError):
            FeedbackController(REQ, alpha=0.0)
        with pytest.raises(ConfigurationError):
            FeedbackController(REQ, alpha=1.5)
        with pytest.raises(ConfigurationError):
            FeedbackController(REQ, beta=1.0)

    def test_reset(self):
        c = FeedbackController(REQ)
        c.decide(rep(mr=0.5))
        c.reset()
        assert c.status is TuningStatus.WARMUP
        assert c.adjustments == 0


class TestSlotConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlotConfig(0)
        with pytest.raises(ConfigurationError):
            SlotConfig(10, horizon=0)
        with pytest.raises(ConfigurationError):
            SlotConfig(10, min_slots=0)

    def test_defaults(self):
        s = SlotConfig()
        assert s.heartbeats == 100
        assert s.horizon is None
        assert not s.reset_on_adjust
        assert s.min_slots == 1


class TestFeedbackDriver:
    def mk(self, slot, alpha=0.2, beta=0.5, policy=InfeasiblePolicy.STOP):
        return FeedbackDriver(
            FeedbackController(REQ, alpha=alpha, beta=beta, policy=policy), slot
        )

    def test_cumulative_window_spans_from_begin(self):
        d = self.mk(SlotConfig(10))
        # 2 mistakes in [0, 10]: MR 0.2 > 0.1 -> grow.
        delta, snap = d.end_slot(0.0, 10.0, 2, 0.5, 5.0, 10)
        assert delta == pytest.approx(+0.1)
        assert snap is not None and snap.accounted_time == pytest.approx(10.0)

    def test_horizon_diffs_against_old_checkpoint(self):
        d = self.mk(SlotConfig(10, horizon=1))
        d.end_slot(0.0, 10.0, 5, 1.0, 5.0, 10)  # first slot, noisy
        # Second slot adds nothing new: windowed MR = 0 -> stable.
        delta, snap = d.end_slot(0.0, 20.0, 5, 1.0, 10.0, 20)
        assert delta == 0.0
        assert snap is not None
        assert snap.mistakes == 0
        assert snap.accounted_time == pytest.approx(10.0)

    def test_min_slots_defers_judgement(self):
        d = self.mk(SlotConfig(10, min_slots=3))
        assert d.end_slot(0.0, 10.0, 9, 1.0, 5.0, 10) == (0.0, None)
        assert d.end_slot(0.0, 20.0, 9, 1.0, 10.0, 20) == (0.0, None)
        delta, snap = d.end_slot(0.0, 30.0, 9, 1.0, 15.0, 30)
        assert snap is not None and delta != 0.0

    def test_reset_on_adjust_measures_current_setting(self):
        d = self.mk(SlotConfig(10, reset_on_adjust=True))
        delta, _ = d.end_slot(0.0, 10.0, 5, 1.0, 5.0, 10)
        assert delta > 0  # grew
        # Next slot: cumulative tallies unchanged -> window since the
        # change has zero mistakes -> stable, not still growing.
        delta2, snap2 = d.end_slot(0.0, 20.0, 5, 1.0, 10.0, 20)
        assert delta2 == 0.0
        assert snap2 is not None and snap2.mistakes == 0

    def test_degenerate_window_skipped(self):
        d = self.mk(SlotConfig(10))
        delta, snap = d.end_slot(5.0, 5.0, 0, 0.0, 0.0, 0)
        assert (delta, snap) == (0.0, None)

    def test_status_passthrough_and_reset(self):
        d = self.mk(SlotConfig(10))
        d.end_slot(0.0, 10.0, 5, 1.0, 5.0, 10)
        assert d.status is TuningStatus.TUNING
        d.reset()
        assert d.status is TuningStatus.WARMUP

    def test_nan_td_with_zero_samples(self):
        d = self.mk(SlotConfig(10))
        _, snap = d.end_slot(0.0, 10.0, 0, 0.0, 0.0, 0)
        assert snap is not None
        assert math.isnan(snap.detection_time)
