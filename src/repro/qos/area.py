"""QoS-space curves and the "area covered" methodology of Section V.

The paper warns that comparing parametric failure detectors at arbitrary
parameter values "almost always leads to the erroneous conclusion that one
is better for detection time while the other provides higher accuracy".
Instead it sweeps each detector's parameter from aggressive to conservative
and studies the *curve* each detector traces in the plane spanned by
detection time and an accuracy metric, plus the area of QoS requirements
that curve can satisfy.  This module provides those curve objects, Pareto
utilities, and the covered-area measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.qos.spec import QoSReport

__all__ = ["CurvePoint", "QoSCurve", "dominates", "pareto_front", "covered_area"]


@dataclass(frozen=True, slots=True)
class CurvePoint:
    """One swept parameter value and the QoS it produced."""

    parameter: float
    qos: QoSReport

    @property
    def detection_time(self) -> float:
        return self.qos.detection_time

    @property
    def mistake_rate(self) -> float:
        return self.qos.mistake_rate

    @property
    def query_accuracy(self) -> float:
        return self.qos.query_accuracy


def dominates(a: QoSReport, b: QoSReport) -> bool:
    """True when ``a`` is at least as good as ``b`` on TD/MR/QAP and
    strictly better on at least one axis (lower TD, lower MR, higher QAP)."""
    no_worse = (
        a.detection_time <= b.detection_time
        and a.mistake_rate <= b.mistake_rate
        and a.query_accuracy >= b.query_accuracy
    )
    strictly_better = (
        a.detection_time < b.detection_time
        or a.mistake_rate < b.mistake_rate
        or a.query_accuracy > b.query_accuracy
    )
    return no_worse and strictly_better


@dataclass
class QoSCurve:
    """A detector's swept curve in QoS space (one figure series).

    Points keep sweep order — the paper notes that "when the parameter
    continuously changes in sequential order the graph is serially
    developing", so order carries meaning.
    """

    detector: str
    points: list[CurvePoint] = field(default_factory=list)

    def add(self, parameter: float, qos: QoSReport) -> None:
        self.points.append(CurvePoint(parameter, qos))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[CurvePoint]:
        return iter(self.points)

    def detection_times(self) -> np.ndarray:
        return np.array([p.detection_time for p in self.points], dtype=np.float64)

    def mistake_rates(self) -> np.ndarray:
        return np.array([p.mistake_rate for p in self.points], dtype=np.float64)

    def query_accuracies(self) -> np.ndarray:
        return np.array([p.query_accuracy for p in self.points], dtype=np.float64)

    def parameters(self) -> np.ndarray:
        return np.array([p.parameter for p in self.points], dtype=np.float64)

    def finite(self) -> "QoSCurve":
        """Drop points whose TD is non-finite (e.g. the φ FD's rounding
        cutoff in the conservative range produces infinite timeouts)."""
        kept = [p for p in self.points if math.isfinite(p.detection_time)]
        return QoSCurve(self.detector, kept)

    def span(self) -> tuple[float, float]:
        """(min, max) finite detection time reached by the sweep."""
        tds = self.finite().detection_times()
        if tds.size == 0:
            return (math.nan, math.nan)
        return (float(tds.min()), float(tds.max()))


def pareto_front(points: Iterable[CurvePoint]) -> list[CurvePoint]:
    """Non-dominated subset of ``points`` (TD↓, MR↓, QAP↑), sweep order kept."""
    pts = list(points)
    return [
        p
        for p in pts
        if not any(dominates(q.qos, p.qos) for q in pts if q is not p)
    ]


def covered_area(
    curve: QoSCurve,
    *,
    accuracy: str = "mistake_rate",
    td_max: float,
    acc_max: float,
    log_accuracy: bool = True,
    acc_floor: float = 1e-7,
) -> float:
    """Measure the area of QoS requirements a detector can satisfy.

    A requirement ``(T̄D, M̄R)`` is satisfiable by the detector iff some
    swept point has ``TD ≤ T̄D`` and ``MR ≤ M̄R``; the satisfiable region is
    the upper-right staircase above the curve's Pareto front.  This function
    integrates that region over the rectangle ``[0, td_max] × [0, acc_max]``
    (optionally with a log-scaled accuracy axis, matching the paper's
    log-scale MR plots) and returns the *fraction* of the rectangle covered,
    in ``[0, 1]``.

    Parameters
    ----------
    curve:
        The swept detector curve.
    accuracy:
        ``"mistake_rate"`` (lower is better) or ``"query_inaccuracy"``
        (``1 − QAP``, lower is better).
    td_max, acc_max:
        Upper-right corner of the requirement rectangle considered.
    log_accuracy:
        Integrate the accuracy axis in log space (floored at ``acc_floor``).
    """
    if td_max <= 0 or acc_max <= 0:
        raise ConfigurationError("td_max and acc_max must be positive")
    pts = curve.finite().points
    if not pts:
        return 0.0
    if accuracy == "mistake_rate":
        acc = np.array([p.mistake_rate for p in pts])
    elif accuracy == "query_inaccuracy":
        acc = np.array([1.0 - p.query_accuracy for p in pts])
    else:
        raise ConfigurationError(f"unknown accuracy axis {accuracy!r}")
    td = np.array([p.detection_time for p in pts])
    keep = (td <= td_max) & (acc <= acc_max)
    td, acc = td[keep], acc[keep]
    if td.size == 0:
        return 0.0

    def scale(v: np.ndarray | float) -> np.ndarray | float:
        if not log_accuracy:
            return v
        return np.log(np.maximum(v, acc_floor) / acc_floor)

    # Pareto staircase on (td, acc): sort by td, keep running minima of acc.
    order = np.argsort(td, kind="stable")
    td, acc = td[order], acc[order]
    best = np.minimum.accumulate(acc)
    # Deduplicate identical TDs, keeping the best accuracy at each.
    uniq_td, idx = np.unique(td, return_index=True)
    # np.unique returns first occurrence; running minimum at the *last*
    # occurrence of each td is the right envelope value.
    last_idx = np.searchsorted(td, uniq_td, side="right") - 1
    env_acc = best[last_idx]
    # Integrate the satisfiable region: for T̄D in [uniq_td[i], next_td),
    # achievable accuracies are [env_acc[i], acc_max].
    edges = np.append(uniq_td, td_max)
    widths = np.diff(edges)
    heights = np.maximum(scale(acc_max) - scale(env_acc), 0.0)
    area = float(np.sum(widths * heights))
    total = td_max * float(scale(acc_max))
    if total <= 0:
        return 0.0
    return min(1.0, area / total)
