"""QoS-space curves, Pareto utilities, covered-area measure."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.qos.area import QoSCurve, covered_area, dominates, pareto_front
from repro.qos.spec import QoSReport


def rep(td, mr, qap=0.99):
    return QoSReport(detection_time=td, mistake_rate=mr, query_accuracy=qap)


def curve(points, name="x"):
    c = QoSCurve(name)
    for i, (td, mr) in enumerate(points):
        c.add(float(i), rep(td, mr))
    return c


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates(rep(0.1, 0.01, 0.999), rep(0.2, 0.02, 0.99))

    def test_equal_does_not_dominate(self):
        a = rep(0.1, 0.01)
        assert not dominates(a, rep(0.1, 0.01))

    def test_tradeoff_is_incomparable(self):
        a, b = rep(0.1, 0.5), rep(0.5, 0.1)
        assert not dominates(a, b) and not dominates(b, a)

    def test_single_axis_improvement_dominates(self):
        assert dominates(rep(0.1, 0.01), rep(0.1, 0.02))


class TestParetoFront:
    def test_front_of_monotone_curve_is_everything(self):
        c = curve([(0.1, 1.0), (0.2, 0.5), (0.3, 0.1)])
        assert len(pareto_front(c.points)) == 3

    def test_dominated_point_removed(self):
        c = curve([(0.1, 0.5), (0.2, 0.6)])  # second is worse on both
        front = pareto_front(c.points)
        assert len(front) == 1
        assert front[0].detection_time == 0.1


class TestQoSCurve:
    def test_iteration_and_arrays(self):
        c = curve([(0.1, 1.0), (0.2, 0.5)])
        assert len(c) == 2
        assert c.detection_times().tolist() == [0.1, 0.2]
        assert c.mistake_rates().tolist() == [1.0, 0.5]
        assert c.parameters().tolist() == [0.0, 1.0]
        assert c.query_accuracies().shape == (2,)

    def test_finite_drops_infinite_td(self):
        c = curve([(0.1, 1.0), (math.inf, 0.0)])
        assert len(c.finite()) == 1

    def test_span(self):
        c = curve([(0.3, 1.0), (0.1, 0.5), (0.9, 0.1)])
        assert c.span() == (0.1, 0.9)

    def test_span_of_empty_curve_is_nan(self):
        lo, hi = QoSCurve("e").span()
        assert math.isnan(lo) and math.isnan(hi)


class TestCoveredArea:
    def test_empty_curve_covers_nothing(self):
        assert covered_area(QoSCurve("e"), td_max=1.0, acc_max=1.0) == 0.0

    def test_better_curve_covers_more(self):
        good = curve([(0.1, 0.01), (0.5, 0.001)])
        bad = curve([(0.4, 0.5), (0.8, 0.1)])
        a_good = covered_area(good, td_max=1.0, acc_max=1.0)
        a_bad = covered_area(bad, td_max=1.0, acc_max=1.0)
        assert a_good > a_bad > 0.0

    def test_result_in_unit_interval(self):
        c = curve([(0.01, 1e-6)])
        a = covered_area(c, td_max=1.0, acc_max=1.0)
        assert 0.0 < a <= 1.0

    def test_point_outside_box_excluded(self):
        c = curve([(2.0, 0.5)])
        assert covered_area(c, td_max=1.0, acc_max=1.0) == 0.0

    def test_query_inaccuracy_axis(self):
        c = curve([(0.1, 0.5)])
        a = covered_area(
            c, accuracy="query_inaccuracy", td_max=1.0, acc_max=1.0
        )
        assert a > 0.0

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            covered_area(curve([(0.1, 0.1)]), accuracy="bogus", td_max=1, acc_max=1)

    def test_invalid_box_rejected(self):
        with pytest.raises(ConfigurationError):
            covered_area(curve([(0.1, 0.1)]), td_max=0.0, acc_max=1.0)

    def test_linear_accuracy_axis(self):
        c = curve([(0.0, 0.0)])
        # Ideal detector at the origin covers the whole box.
        a = covered_area(c, td_max=1.0, acc_max=1.0, log_accuracy=False)
        assert a == pytest.approx(1.0)
