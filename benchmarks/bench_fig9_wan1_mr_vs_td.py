"""Fig. 9 — mistake rate vs detection time, WAN-1 (Stanford → NAIST).

The PlanetLab counterpart of Fig. 6: 10 ms-target heartbeats (effective
~12.8 ms), no losses, heavy sender-side period jitter.  Asserts the
figure's qualitative claims plus the WAN-1-specific ones the text calls
out: Chen "can get the 0 MR finally", Bertier is a single aggressive
point, SFD's band stays at or below the ~0.9 s requirement (the paper's
SFD curve tops out at 0.87 s).
"""

from repro.traces import WAN_1

from _common import emit, figure_setup
from _figures import figure_data, render_figure, run_and_check


def test_fig9(benchmark):
    result = benchmark.pedantic(
        lambda: run_and_check(figure_setup(WAN_1)), rounds=1, iterations=1
    )
    chen = result.curves["chen"].finite()
    # "While Chen FD is a conservative failure detector, and can get the
    # 0 MR finally" — the most conservative sweep point is (near) zero.
    assert chen.mistake_rates()[-1] < 0.02
    emit(
        "fig9",
        render_figure(
            "fig9", "Fig. 9: Mistake rate vs detection time (WAN-1)", result
        ),
        data=figure_data(result),
    )
