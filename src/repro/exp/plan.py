"""Experiment plans: (trace × family × grid) declarations → flat job lists.

Section V's evaluation is one embarrassingly-parallel job: replay the same
trace "from a highly aggressive behavior to a very conservative one"
through every detector family under identical conditions.  The unit of
work is therefore *one replay of one spec over one view*, and this module
makes that unit explicit:

* an :class:`ExperimentPlan` collects named traces and sweep declarations
  (family + grid + fixed parameters, exactly the vocabulary of
  :func:`repro.analysis.sweep.sweep_curve`),
* :meth:`ExperimentPlan.jobs` expands the declarations into a flat,
  deterministically ordered list of :class:`ReplayJob`\\ s — each carrying
  a frozen, *picklable* replay spec (specs round-trip through
  ``Spec.to_dict``/``from_dict`` when crossing process boundaries),
* :meth:`ExperimentPlan.run` hands the jobs to a pluggable executor
  (:class:`~repro.exp.executors.SerialExecutor` by default,
  :class:`~repro.exp.executors.ProcessPoolExecutor` for fan-out) and
  reassembles the per-point QoS reports into
  :class:`~repro.qos.area.QoSCurve`\\ s **in sweep order**, regardless of
  completion order — which is what keeps figure outputs bit-identical
  between serial and parallel runs.

The separation of detection logic from the execution/aggregation layer
follows Dobre et al.'s architecture argument; the config-file front end
lives in :mod:`repro.exp.config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence, Union

from repro.detectors.registry import DetectorFamily, get as get_family
from repro.errors import ConfigurationError
from repro.exp.archive import check_archive_name
from repro.qos.area import QoSCurve
from repro.qos.spec import QoSReport
from repro.traces.trace import HeartbeatTrace, MonitorView

__all__ = ["ReplayJob", "SweepDecl", "ExperimentPlan", "PlanResult"]


@dataclass(frozen=True)
class ReplayJob:
    """One replay of one spec over one named view — the unit of work.

    Jobs are picklable (the spec pickles through its
    ``to_dict``/``from_dict`` round-trip), carry their position in the
    plan expansion (``index``), and know which curve point they produce
    (``trace``/``sweep``/``parameter``) so executors may run them in any
    order and the plan can still reassemble curves deterministically.
    """

    index: int
    trace: str
    sweep: str
    family: str
    parameter: float
    spec: Any

    def describe(self) -> str:
        """Human-oriented job label for logs and failure reports."""
        try:
            from repro.detectors.registry import spec_string

            text = spec_string(self.spec)
        except Exception:
            text = repr(self.spec)
        return f"job[{self.index}] trace={self.trace!r} sweep={self.sweep!r} {text}"


@dataclass(frozen=True)
class SweepDecl:
    """One declared sweep: a family swept over a grid on one trace."""

    trace: str
    name: str
    family: str
    grid: tuple[float, ...]
    params: Mapping[str, Any] = field(default_factory=dict)
    base: Any = None  # optional spec template (config-file path)
    descriptor: DetectorFamily | None = None  # resolved family (spec building)


class ExperimentPlan:
    """Declarative (trace × family × grid) experiment, executor-agnostic.

    Usage::

        plan = ExperimentPlan()
        plan.add_trace("wan1", trace_or_view)
        plan.add_sweep("wan1", "chen", alphas, window=1000)
        plan.add_sweep("wan1", "sfd", sm1_list, requirements=req)
        result = plan.run(ProcessPoolExecutor(jobs=4))
        curve = result.curve("wan1", "chen")

    Declaration order is preserved everywhere: :meth:`jobs` expands
    sweeps in the order they were added and grids in the order given, and
    :class:`PlanResult` keeps that order in its curves.
    """

    def __init__(self) -> None:
        self._views: dict[str, MonitorView] = {}
        self._sweeps: list[SweepDecl] = []

    # -- declaration ---------------------------------------------------- #

    def add_trace(
        self, name: str, source: Union[MonitorView, HeartbeatTrace]
    ) -> "ExperimentPlan":
        """Register a named monitor view (or trace, reduced to its view)."""
        if not name:
            raise ConfigurationError("trace name must be non-empty")
        check_archive_name(name, "trace name")
        if name in self._views:
            raise ConfigurationError(f"trace {name!r} already declared")
        view = source.monitor_view() if isinstance(source, HeartbeatTrace) else source
        if not isinstance(view, MonitorView):
            raise ConfigurationError(
                f"trace {name!r}: cannot replay over {type(source).__name__}"
            )
        self._views[name] = view
        return self

    def add_sweep(
        self,
        trace: str,
        family: Union[str, DetectorFamily],
        grid: Sequence[float] | None = None,
        *,
        name: str | None = None,
        base: Any = None,
        **params: Any,
    ) -> "ExperimentPlan":
        """Declare one sweep over an already-declared trace.

        Parameters mirror :func:`repro.analysis.sweep.sweep_curve`:
        ``grid`` defaults to the family's registered aggressive →
        conservative grid, ``**params`` are fixed spec fields applied to
        every point.  ``name`` keys the resulting curve (default: the
        family name — declare distinct names to sweep one family twice
        on the same trace).  ``base`` optionally gives a full spec
        template instead of ``**params`` (the config-file path: the
        sweep parameter is overridden per grid point via the spec's
        dict round-trip).
        """
        fam = get_family(family) if isinstance(family, str) else family
        if trace not in self._views:
            raise ConfigurationError(
                f"sweep over undeclared trace {trace!r}; "
                f"declared: {', '.join(self._views) or '(none)'}"
            )
        if base is not None and params:
            raise ConfigurationError(
                "give either a base spec or **params, not both"
            )
        key = name if name is not None else fam.name
        check_archive_name(key, "sweep name")
        if any(s.trace == trace and s.name == key for s in self._sweeps):
            raise ConfigurationError(
                f"sweep {key!r} already declared for trace {trace!r} "
                "(pass name= to distinguish)"
            )
        values = fam.default_grid if grid is None else tuple(float(v) for v in grid)
        self._sweeps.append(
            SweepDecl(
                trace=trace,
                name=key,
                family=fam.name,
                grid=values,
                params=dict(params),
                base=base,
                descriptor=fam,
            )
        )
        return self

    # -- introspection -------------------------------------------------- #

    @property
    def views(self) -> Mapping[str, MonitorView]:
        return dict(self._views)

    @property
    def sweeps(self) -> tuple[SweepDecl, ...]:
        return tuple(self._sweeps)

    def __len__(self) -> int:
        """Total number of replay jobs the plan expands to."""
        return sum(len(s.grid) for s in self._sweeps)

    # -- expansion ------------------------------------------------------ #

    def _point_spec(self, decl: SweepDecl, value: float):
        fam = decl.descriptor if decl.descriptor is not None else get_family(decl.family)
        if decl.base is not None:
            if fam.sweep_param is None:
                return decl.base
            data = decl.base.to_dict()
            data[fam.sweep_param] = value
            return fam.spec_from_dict(data)
        return fam.grid_spec(value, **decl.params)

    def jobs(self) -> list[ReplayJob]:
        """Expand every declaration into the flat deterministic job list."""
        out: list[ReplayJob] = []
        for decl in self._sweeps:
            for value in decl.grid:
                out.append(
                    ReplayJob(
                        index=len(out),
                        trace=decl.trace,
                        sweep=decl.name,
                        family=decl.family,
                        parameter=float(value),
                        spec=self._point_spec(decl, float(value)),
                    )
                )
        return out

    # -- execution ------------------------------------------------------ #

    def run(self, executor=None, *, instruments=None, cache=None) -> "PlanResult":
        """Execute every job and reassemble curves in sweep order.

        ``executor`` defaults to a fresh
        :class:`~repro.exp.executors.SerialExecutor`; any object with
        ``run(jobs, views, instruments=None) -> Mapping[int, QoSReport]``
        works.  Reassembly is by job index, so executors are free to
        complete jobs in any order.

        ``cache`` (a :class:`~repro.exp.cache.SweepCache`) makes the run
        incremental: jobs are partitioned into *hits* — whose reports are
        loaded from the cache with zero replay — and *misses*, which are
        handed to the executor and stored afterwards.  Keys cover the
        view fingerprint, family, and full spec, so a cached run over
        unchanged inputs reassembles curves bit-identically to a cold
        one; per-run hit/miss counts land on
        :attr:`PlanResult.cache`.
        """
        if executor is None:
            from repro.exp.executors import SerialExecutor

            executor = SerialExecutor()
        if not self._sweeps:
            raise ConfigurationError("plan declares no sweeps")
        jobs = self.jobs()
        reports: dict[int, QoSReport] = {}
        misses = jobs
        keys: dict[int, str] = {}
        stats = None
        if cache is not None:
            fingerprints = {
                name: view.fingerprint() for name, view in self._views.items()
            }
            misses = []
            for job in jobs:
                key = cache.key(fingerprints[job.trace], job.family, job.spec)
                keys[job.index] = key
                qos = cache.load(key)
                if qos is None:
                    misses.append(job)
                else:
                    reports[job.index] = qos
        if misses:
            executed = executor.run(misses, self.views, instruments=instruments)
            if cache is not None:
                for job in misses:
                    if job.index not in executed:
                        continue  # surfaced as missing below
                    cache.store(
                        keys[job.index],
                        executed[job.index],
                        meta={
                            "trace": job.trace,
                            "sweep": job.sweep,
                            "family": job.family,
                            "parameter": job.parameter,
                            "view": fingerprints[job.trace],
                        },
                    )
                cache.write_manifest()
            reports.update(executed)
        if cache is not None:
            from repro.exp.cache import CacheStats

            stats = CacheStats(
                hits=len(jobs) - len(misses),
                misses=len(misses),
                invalid=0,
            )
        missing = [j.index for j in jobs if j.index not in reports]
        if missing:
            raise ConfigurationError(
                f"executor returned no result for jobs {missing[:5]}"
                + ("…" if len(missing) > 5 else "")
            )
        curves: dict[str, dict[str, QoSCurve]] = {}
        cursor = 0
        for decl in self._sweeps:
            curve = QoSCurve(decl.family)
            for value in decl.grid:
                curve.add(float(value), reports[cursor])
                cursor += 1
            curves.setdefault(decl.trace, {})[decl.name] = curve
        return PlanResult(curves=curves, cache=stats)


@dataclass
class PlanResult:
    """Curves of one executed plan, keyed ``trace → sweep name``.

    ``cache`` carries this run's hit/miss accounting when the plan ran
    against a :class:`~repro.exp.cache.SweepCache`, ``None`` otherwise.
    """

    curves: dict[str, dict[str, QoSCurve]]
    cache: Any = None

    def curve(self, trace: str, name: str | None = None) -> QoSCurve:
        """One curve; ``name`` may be omitted when the trace has one sweep."""
        try:
            per_trace = self.curves[trace]
        except KeyError:
            raise ConfigurationError(
                f"no curves for trace {trace!r}; have {', '.join(self.curves)}"
            ) from None
        if name is None:
            if len(per_trace) != 1:
                raise ConfigurationError(
                    f"trace {trace!r} has {len(per_trace)} curves; name one of "
                    f"{', '.join(per_trace)}"
                )
            return next(iter(per_trace.values()))
        try:
            return per_trace[name]
        except KeyError:
            raise ConfigurationError(
                f"no curve {name!r} for trace {trace!r}; have {', '.join(per_trace)}"
            ) from None

    def trace_curves(self, trace: str) -> dict[str, QoSCurve]:
        """All curves of one trace, declaration order (for figure renders)."""
        if trace not in self.curves:
            raise ConfigurationError(
                f"no curves for trace {trace!r}; have {', '.join(self.curves)}"
            )
        return dict(self.curves[trace])

    def items(self) -> Iterable[tuple[str, str, QoSCurve]]:
        """Flat ``(trace, name, curve)`` iteration, declaration order."""
        for trace, per_trace in self.curves.items():
            for name, curve in per_trace.items():
                yield trace, name, curve

    def __len__(self) -> int:
        return sum(len(per_trace) for per_trace in self.curves.values())
