"""Fault injection: the paper's crash-stop model.

"A process may fail by crashing; here a crashed process does not recover"
(Section II-B).  A :class:`CrashPlan` is the ground truth an experiment
checks detector output against: it says when (if ever) the monitored
process crashes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CrashPlan"]


@dataclass(frozen=True, slots=True)
class CrashPlan:
    """Ground-truth crash schedule for one process.

    Attributes
    ----------
    crash_time:
        Global time of the crash; ``inf`` (default) means the process is
        correct (never crashes).
    """

    crash_time: float = math.inf

    def __post_init__(self) -> None:
        if self.crash_time < 0:
            raise ConfigurationError(
                f"crash_time must be >= 0, got {self.crash_time!r}"
            )

    @property
    def crashes(self) -> bool:
        return math.isfinite(self.crash_time)

    def alive_at(self, t: float) -> bool:
        """True while the process has not yet crashed."""
        return t < self.crash_time

    @classmethod
    def never(cls) -> "CrashPlan":
        return cls(math.inf)

    @classmethod
    def at(cls, t: float) -> "CrashPlan":
        return cls(t)
