#!/usr/bin/env python3
"""Quickstart: self-tuning failure detection over a simulated WAN link.

Builds the paper's Fig. 2 system end to end — a heartbeat sender, an
unreliable channel, and a monitor hosting SFD — injects a crash, and
prints what the detector measured: its self-tuned safety margin, the
wrong-suspicion QoS while the process was alive, and the actual
crash-detection latency.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import QoSRequirements, SFD, SlotConfig
from repro.net import LogNormalDelay, GilbertElliottLoss
from repro.sim import CrashPlan, HeartbeatSender, MonitorProcess, SimLink, Simulator


def main() -> None:
    # The user's QoS contract: detect within 1 s, at most one wrong
    # suspicion per 20 s, correct output 99% of the time (Fig. 4's inputs).
    requirements = QoSRequirements(
        max_detection_time=1.0,
        max_mistake_rate=0.05,
        min_query_accuracy=0.99,
    )

    detector = SFD(
        requirements,
        sm1=0.01,  # deliberately aggressive start: watch it self-tune
        alpha=0.1,
        beta=0.5,
        window_size=100,
        slot=SlotConfig(50, reset_on_adjust=True, min_slots=3),
    )

    sim = Simulator()
    rng = np.random.default_rng(7)
    crash = CrashPlan.at(120.0)
    monitor = MonitorProcess(sim, detector, ground_truth=crash)
    link = SimLink(
        sim,
        delay=LogNormalDelay(mean=0.05, std=0.015, floor=0.03),
        loss=GilbertElliottLoss.from_rate_and_burst(rate=0.01, mean_burst=4),
        rng=rng,
        deliver=monitor.deliver,
    )
    HeartbeatSender(sim, link, interval=0.1, jitter_std=0.01, crash=crash, rng=rng)

    sim.run(until=140.0)
    report = monitor.finish()

    print("SFD quickstart")
    print("=" * 60)
    print(f"heartbeats processed : {report.heartbeats}")
    print(f"channel loss rate    : {link.loss_rate * 100:.2f}%")
    print(f"self-tuned margin    : {detector.safety_margin * 1e3:.0f} ms "
          f"(started at {detector.sm1 * 1e3:.0f} ms)")
    print(f"tuning status        : {detector.status.value}")
    print(f"cumulative QoS       : {report.qos}   (includes the aggressive start)")
    converged = detector.tuning_trace[-1].qos
    print(f"converged-window QoS : {converged}")
    print(f"requirement          : {requirements}")
    print(f"requirement met      : {requirements.satisfied_by(converged)}")
    print(f"crash at t=120 s detected after {report.detection_time * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
