"""Trust/suspect timelines."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.qos.timeline import Timeline


def tl(starts, ends, t0=0.0, t1=100.0):
    return Timeline(
        t_begin=t0, t_end=t1, starts=np.asarray(starts), ends=np.asarray(ends)
    )


class TestConstruction:
    def test_validation_period(self):
        with pytest.raises(ConfigurationError):
            tl([], [], t0=5.0, t1=5.0)

    def test_validation_interval_order(self):
        with pytest.raises(ConfigurationError):
            tl([10.0, 5.0], [12.0, 7.0])  # overlapping/decreasing
        with pytest.raises(ConfigurationError):
            tl([10.0], [10.0])  # empty interval
        with pytest.raises(ConfigurationError):
            tl([-1.0], [5.0])  # outside the period

    def test_from_freshness(self):
        arrivals = np.array([0.0, 1.0, 3.0, 4.0])
        freshness = np.array([1.5, 2.0, 4.5, 5.5])
        t = Timeline.from_freshness(arrivals, freshness)
        assert t.episodes == 1
        assert t.starts.tolist() == [2.0]
        assert t.ends.tolist() == [3.0]

    def test_from_transitions(self):
        t = Timeline.from_transitions(
            [(10.0, True), (12.0, False), (50.0, True), (53.0, False)],
            t_begin=0.0,
            t_end=100.0,
        )
        assert t.episodes == 2
        assert t.suspect_time == pytest.approx(5.0)

    def test_from_transitions_open_tail(self):
        t = Timeline.from_transitions(
            [(90.0, True)], t_begin=0.0, t_end=100.0
        )
        assert t.episodes == 1
        assert t.ends.tolist() == [100.0]

    def test_from_transitions_initially_suspecting(self):
        t = Timeline.from_transitions(
            [(10.0, False)], t_begin=0.0, t_end=100.0, initial_suspecting=True
        )
        assert t.starts.tolist() == [0.0]
        assert t.ends.tolist() == [10.0]


class TestQueries:
    def test_availability(self):
        t = tl([10.0, 50.0], [12.0, 51.0])
        assert t.suspect_time == pytest.approx(3.0)
        assert t.availability == pytest.approx(0.97)

    def test_suspecting_at(self):
        t = tl([10.0, 50.0], [12.0, 51.0])
        assert not t.suspecting_at(5.0)
        assert t.suspecting_at(11.0)
        assert not t.suspecting_at(12.0)  # half-open interval
        assert t.suspecting_at(50.5)
        assert not t.suspecting_at(200.0)  # outside the period

    def test_longest_episode(self):
        t = tl([10.0, 50.0], [12.0, 57.0])
        assert t.longest_episode() == pytest.approx(7.0)
        assert tl([], []).longest_episode() == 0.0


class TestRender:
    def test_marks_cells(self):
        t = tl([50.0], [60.0])
        bar = t.render(width=10)
        # Cells 5 (50-60) suspecting.
        assert "#" in bar and "." in bar
        strip = bar.split("] ")[1].split(" [")[0]
        assert strip == "....#....."[:10] or strip.count("#") in (1, 2)

    def test_brief_episode_visible(self):
        t = tl([50.0], [50.001])
        strip = t.render(width=10).split("] ")[1].split(" [")[0]
        assert strip.count("#") == 1

    def test_width_validation(self):
        with pytest.raises(ConfigurationError):
            tl([], []).render(width=0)

    def test_reports_availability(self):
        assert "availability 100.000%" in tl([], []).render()
