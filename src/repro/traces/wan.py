"""The seven published WAN experiment profiles (Tables I-II, Section V-A).

Each :class:`WANProfile` bundles everything the paper reports about one
trace — hosts (Table I), heartbeat counts, loss rate, send/receive period
statistics, RTT (Table II), plus the burst structure documented for the
JAIST↔EPFL run — and knows how to build the calibrated delay/loss models
the synthetic generator (:mod:`repro.traces.synth`) feeds the channel.

Calibration identities
----------------------
* One-way delay mean = RTT/2 (symmetric path assumption; only the jitter,
  not the absolute delay, influences adaptive detectors).
* One-way jitter σ_d from the period statistics: for i.i.d. delays the
  receive-period variance is the send-period variance plus twice the delay
  variance, so ``σ_d² = max((σ_recv² − σ_send²)/2, ε)``.
* Loss bursts: WAN-JAIST reports 23,192 losses in 814 bursts (mean ≈ 28.5,
  max 1,093); lossy PlanetLab cases publish only the rate, for which we
  assume a moderate mean burst of 5 (sensitivity to this choice is covered
  by the ablation bench).
* The receive-period *mean* in lossy cases exceeds the send period simply
  because losses leave gaps — this arises naturally in replay and needs no
  drift term.  WAN-1's slight clock drift (12.830 vs 12.825 ms with 0%
  loss) is modeled explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.net.delay import CorrelatedLogNormalDelay, DelayModel, SpikeDelay
from repro.net.loss import GilbertElliottLoss, LossModel, NoLoss

__all__ = [
    "WANProfile",
    "LAN_REFERENCE",
    "WAN_JAIST",
    "WAN_1",
    "WAN_2",
    "WAN_3",
    "WAN_4",
    "WAN_5",
    "WAN_6",
    "ALL_PROFILES",
    "PLANETLAB_PROFILES",
]

#: Jitter floor (seconds) when the published period statistics would imply
#: non-positive delay variance.
_MIN_JITTER = 5e-4


@dataclass(frozen=True)
class WANProfile:
    """Published statistics of one WAN heartbeat experiment.

    Times are seconds.  ``send_mean``/``send_std`` describe the sending
    period; ``recv_std`` the receive-period deviation (Table II);
    ``rtt_mean``/``rtt_min`` the ping RTT summary.  ``spike_rate`` &c.
    shape the rare congestion episodes that reproduce the documented
    delay maxima and mistake bursts.
    """

    name: str
    sender: str
    sender_host: str
    receiver: str
    receiver_host: str
    n_heartbeats: int
    send_mean: float
    send_std: float
    recv_std: float
    loss_rate: float
    rtt_mean: float
    rtt_min: float | None = None
    #: The *target* heartbeat interval (Section V: 100 ms for the JAIST
    #: run, 10 ms for PlanetLab).  Sending periods are modeled as this
    #: floor plus a right-skewed OS-scheduling tail ("timing inaccuracies
    #: due to irregular OS scheduling", Section II-B) — which is how a
    #: 12.8 ms measured mean with a 13 ms σ coexists with a mostly-regular
    #: sender.  ``None`` falls back to a gamma period model.
    send_base: float | None = None
    mean_burst: float = 5.0
    drift: float = 0.0
    spike_rate: float = 1e-4
    spike_length: float = 8.0
    spike_min: float = 0.05
    spike_max: float = 0.5
    #: Queue-state persistence time constant τ (seconds) controlling the
    #: per-message delay correlation exp(−Δt/τ).
    delay_corr_time: float = 0.3
    description: str = ""
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_heartbeats < 2:
            raise ConfigurationError("profile needs >= 2 heartbeats")
        if self.send_mean <= 0:
            raise ConfigurationError("send_mean must be > 0")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ConfigurationError("loss_rate must lie in [0, 1)")

    @property
    def delay_mean(self) -> float:
        """Calibrated one-way delay mean (RTT/2)."""
        return self.rtt_mean / 2.0

    @property
    def delay_std(self) -> float:
        """Calibrated one-way jitter from the period-variance identity."""
        var = (self.recv_std**2 - self.send_std**2) / 2.0
        return math.sqrt(max(var, _MIN_JITTER**2))

    @property
    def delay_floor(self) -> float:
        """Propagation floor: half the minimum RTT, else 60% of the mean."""
        if self.rtt_min is not None:
            return self.rtt_min / 2.0
        return 0.6 * self.delay_mean

    def stall_components(self) -> tuple[tuple[float, float], ...] | None:
        """Stall mixture of the schedule-with-catch-up sender model.

        Returns ``None`` when the published period σ is explained by plain
        cadence jitter (σ ≤ mean − target, e.g. the JAIST sender).
        Otherwise the σ is attributed to OS descheduling stalls — frequent
        short hiccups (~1.5 periods) plus rare long stalls (~20 periods,
        probability set so the big component carries the published period
        variance).  Stalled messages are sent late and *catch up in a
        burst* without shifting the long-run schedule
        (:func:`repro.traces.synth.send_times_for`): a sleep-loop sender
        that permanently accumulated every stall would random-walk away
        from any sequence-anchored arrival estimator, which contradicts
        the paper's published mistake-rate curves (~1 mistake/s at the
        aggressive end of Fig. 9, vs ~40/s for the walk).
        """
        if self.send_base is None or self.send_std <= 0:
            return None
        excess = self.send_mean - self.send_base
        if self.send_std <= excess:
            return None
        m_big = 20.0 * self.send_mean
        p_big = min(self.send_std**2 / (m_big * m_big), 0.2)
        m_small = 1.5 * self.send_mean
        p_small = 0.01
        return ((p_small, m_small), (p_big, m_big))

    @property
    def delay_corr(self) -> float:
        """Per-message delay correlation ``exp(−Δt/τ)`` (queue persistence)."""
        return math.exp(-self.send_mean / self.delay_corr_time)

    def delay_model(self) -> DelayModel:
        """Floor + temporally correlated lognormal jitter, with rare
        congestion spikes.  Correlation keeps UDP reordering realistic for
        sub-jitter sending periods (see
        :class:`repro.net.delay.CorrelatedLogNormalDelay`)."""
        base = CorrelatedLogNormalDelay(
            mean=self.delay_mean,
            std=self.delay_std,
            floor=self.delay_floor,
            corr=self.delay_corr,
        )
        if self.spike_rate <= 0.0:
            return base
        return SpikeDelay(
            base,
            spike_rate=self.spike_rate,
            mean_spike_length=self.spike_length,
            spike_min=self.spike_min,
            spike_max=self.spike_max,
        )

    def loss_model(self) -> LossModel:
        if self.loss_rate == 0.0:
            return NoLoss()
        return GilbertElliottLoss.from_rate_and_burst(self.loss_rate, self.mean_burst)

    def duration(self, n: int | None = None) -> float:
        """Expected experiment duration for ``n`` heartbeats, seconds."""
        n = self.n_heartbeats if n is None else n
        return (n - 1) * self.send_mean

    def synthesize_to(
        self,
        path,
        *,
        n: int | None = None,
        seed: int = 0,
        include_drift: bool = True,
        chunk: int = 1 << 18,
    ):
        """Synthesize this profile straight into a columnar store.

        Convenience front for :func:`repro.traces.synth.synthesize_to`
        (imported lazily — :mod:`~repro.traces.synth` imports this
        module); returns the opened
        :class:`~repro.traces.columnar.TraceStore`.
        """
        from repro.traces.synth import synthesize_to

        return synthesize_to(
            self, path, n=n, seed=seed, include_drift=include_drift, chunk=chunk
        )


#: One week, JAIST (Japan) → EPFL (Switzerland), Section V-A.  100 ms
#: target period, measured 103.501 ms (σ 0.189 ms); 23,192 of 5,845,713
#: heartbeats lost in 814 bursts (max 1,093); RTT 283.338 ms (σ 27.342,
#: min 270.201, max 717.832).
WAN_JAIST = WANProfile(
    name="WAN-JAIST",
    sender="Japan (JAIST)",
    sender_host="jaist.ac.jp",
    receiver="Switzerland (EPFL)",
    receiver_host="epfl.ch",
    n_heartbeats=5_845_713,
    send_mean=0.103501,
    send_std=0.000189,
    send_base=0.100,
    # Receive-period σ is not tabulated for this trace; the RTT σ of
    # 27.342 ms bounds the jitter — use σ_d = RTT σ/√2 (symmetric halves).
    recv_std=math.sqrt(0.000189**2 + 2 * (0.027342 / math.sqrt(2.0)) ** 2),
    loss_rate=23_192 / 5_845_713,
    rtt_mean=0.283338,
    rtt_min=0.270201,
    mean_burst=23_192 / 814,
    spike_rate=5e-5,
    spike_length=12.0,
    spike_min=0.03,
    spike_max=0.43,  # reaches the documented 717.832 ms RTT maximum
    description="JAIST->EPFL intercontinental, one week (phi-FD trace files)",
)

WAN_1 = WANProfile(
    name="WAN-1",
    sender="USA",
    sender_host="planet1.scs.stanford.edu",
    receiver="Japan",
    receiver_host="planetlab-03.naist.ac.jp",
    n_heartbeats=6_737_054,
    send_mean=0.012825,
    send_base=0.010,
    send_std=0.013069,
    recv_std=0.014892,
    loss_rate=0.0,
    rtt_mean=0.193909,
    # "thus showing a slight clock drift": the table's 12.830 vs 12.825 ms
    # ratio taken literally would be 390 ppm — far beyond real clocks and
    # dominated by the table's rounding.  We model a typical crystal-grade
    # 20 ppm drift, which keeps the receive period marginally above the
    # send period without distorting the cross-clock TD statistic.
    drift=2e-5,
    spike_rate=8e-5,
    spike_length=10.0,
    spike_min=0.02,
    spike_max=0.4,
    description="Stanford->NAIST, 24h, March 12 2007",
)

WAN_2 = WANProfile(
    name="WAN-2",
    sender="Germany",
    sender_host="planetlab-2.fokus.fraunhofer.de",
    receiver="USA",
    receiver_host="planet1.scs.stanford.edu",
    n_heartbeats=7_477_304,
    send_mean=0.012176,
    send_base=0.010,
    send_std=0.001219,
    recv_std=0.019547,
    loss_rate=0.05,
    rtt_mean=0.194959,
    description="Fraunhofer->Stanford, 24h, March 8 2007",
)

WAN_3 = WANProfile(
    name="WAN-3",
    sender="Japan",
    sender_host="planetlab-03.naist.ac.jp",
    receiver="Germany",
    receiver_host="planetlab-2.fokus.fraunhofer.de",
    n_heartbeats=7_104_446,
    send_mean=0.01221,
    send_base=0.010,
    send_std=0.001243,
    recv_std=0.004768,
    loss_rate=0.02,
    rtt_mean=0.18944,
    description="NAIST->Fraunhofer, 24h, March 6 2007",
)

WAN_4 = WANProfile(
    name="WAN-4",
    sender="China (Hong Kong)",
    sender_host="planetlab2.ie.cuhk.edu.hk",
    receiver="USA",
    receiver_host="planet1.scs.stanford.edu",
    n_heartbeats=7_028_178,
    send_mean=0.012337,
    send_base=0.010,
    send_std=0.009953,
    recv_std=0.022918,
    loss_rate=0.0,
    rtt_mean=0.172863,
    spike_rate=8e-5,
    spike_length=10.0,
    description="CUHK->Stanford, 24h, March 10 2007",
)

WAN_5 = WANProfile(
    name="WAN-5",
    sender="China (Hong Kong)",
    sender_host="planetlab2.ie.cuhk.edu.hk",
    receiver="Germany",
    receiver_host="planetlab-2.fokus.fraunhofer.de",
    n_heartbeats=7_008_170,
    send_mean=0.012367,
    send_base=0.010,
    send_std=0.015599,
    recv_std=0.016557,
    loss_rate=0.04,
    rtt_mean=0.362423,
    description="CUHK->Fraunhofer, 24h, March 11 2007",
)

WAN_6 = WANProfile(
    name="WAN-6",
    sender="China (Hong Kong)",
    sender_host="plab1.cs.ust.hk",
    receiver="Japan",
    receiver_host="planetlab1.sfc.wide.ad.jp",
    n_heartbeats=7_040_560,
    send_mean=0.01233,
    send_base=0.010,
    send_std=0.010185,
    recv_std=0.01756,
    loss_rate=0.0,
    rtt_mean=0.07852,
    spike_rate=8e-5,
    spike_length=10.0,
    description="HKUST->Keio SFC, 24h",
)

#: A wired-LAN reference case — not one of the paper's experiments, but
#: the environment Bertier FD was designed for ("primarily designed to be
#: used over wired local area networks (LANs), where messages are seldom
#: lost", Sections I/III).  Sub-millisecond symmetric delays, microsecond
#: jitter, no losses, no congestion spikes.
LAN_REFERENCE = WANProfile(
    name="LAN-REF",
    sender="lab host A",
    sender_host="lan-a.local",
    receiver="lab host B",
    receiver_host="lan-b.local",
    n_heartbeats=2_000_000,
    send_mean=0.1,
    send_std=0.0005,
    send_base=0.0995,
    recv_std=0.0006,
    loss_rate=0.0,
    rtt_mean=0.0008,
    rtt_min=0.0006,
    spike_rate=0.0,
    delay_corr_time=0.05,
    description="wired-LAN reference (Bertier FD's design point)",
)

PLANETLAB_PROFILES: tuple[WANProfile, ...] = (
    WAN_1,
    WAN_2,
    WAN_3,
    WAN_4,
    WAN_5,
    WAN_6,
)
ALL_PROFILES: tuple[WANProfile, ...] = (WAN_JAIST,) + PLANETLAB_PROFILES
