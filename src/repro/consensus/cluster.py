"""Consensus cluster builder: processes, links, detectors, outcome checks.

Wires ``n`` :class:`~repro.consensus.protocol.ConsensusProcess` instances
over fully connected unreliable links in one simulator, runs to a horizon,
and verifies the three consensus properties against ground truth:

* **Validity** — every decided value is some process's initial value;
* **Agreement** — no two processes decide differently;
* **Termination** — every correct process decides (within the horizon).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.detectors.base import FailureDetector
from repro.detectors.phi import PhiFD
from repro.net.delay import DelayModel, NormalDelay
from repro.net.loss import LossModel, NoLoss
from repro.sim.crash import CrashPlan
from repro.sim.engine import Simulator
from repro.sim.network import SimLink
from repro.consensus.protocol import ConsensusProcess

__all__ = ["ConsensusOutcome", "ConsensusCluster"]


@dataclass
class ConsensusOutcome:
    """Result of one consensus run, checked against ground truth."""

    decisions: dict[int, Any]
    decided_at: dict[int, float]
    correct: set[int]
    initial_values: dict[int, Any]
    rounds: dict[int, int] = field(default_factory=dict)

    @property
    def terminated(self) -> bool:
        """Every correct process decided."""
        return self.correct.issubset(self.decisions.keys())

    @property
    def agreement(self) -> bool:
        """At most one distinct decided value."""
        return len(set(self.decisions.values())) <= 1

    @property
    def validity(self) -> bool:
        """Every decision was somebody's initial value."""
        proposed = set(self.initial_values.values())
        return all(v in proposed for v in self.decisions.values())

    @property
    def decision(self) -> Any:
        if not self.decisions:
            return None
        return next(iter(self.decisions.values()))

    @property
    def latency(self) -> float:
        """Time until the last correct process decided (inf if not all)."""
        if not self.terminated:
            return math.inf
        return max(self.decided_at[p] for p in self.correct)


class ConsensusCluster:
    """Build and run one consensus instance on the DES.

    Parameters
    ----------
    values:
        Initial value per process (``len(values)`` = group size).
    detector_factory:
        Per-peer detector builder shared by all processes (default: a
        small-window φ FD — swap in SFD or Chen to study the FD's impact
        on consensus latency).
    crash_times:
        Optional ground-truth crash time per pid.  At most a minority may
        crash (the ◊S assumption); violating it raises.
    delay, loss:
        Channel models for every directed link.
    seed:
        Deterministic randomness for all links.
    """

    def __init__(
        self,
        values: Sequence[Any],
        *,
        detector_factory: Callable[[int], FailureDetector] | None = None,
        crash_times: dict[int, float] | None = None,
        delay: DelayModel | None = None,
        loss: LossModel | None = None,
        heartbeat_interval: float = 0.05,
        retry_interval: float = 0.2,
        start_time: float = 0.0,
        seed: int = 0,
    ):
        n = len(values)
        if n < 2:
            raise ConfigurationError("consensus needs at least 2 processes")
        crash_times = crash_times or {}
        faulty = [p for p in crash_times if math.isfinite(crash_times[p])]
        if len(faulty) * 2 >= n:
            raise ConfigurationError(
                f"at most a minority may crash: {len(faulty)} of {n}"
            )
        if detector_factory is None:
            detector_factory = lambda peer: PhiFD(  # noqa: E731
                4.0, window_size=20
            )
        self.sim = Simulator()
        self.n = n
        self.values = {p: values[p] for p in range(n)}
        self.crash_plans = {
            p: CrashPlan(crash_times.get(p, math.inf)) for p in range(n)
        }
        delay = delay if delay is not None else NormalDelay(0.01, 0.002, minimum=0.002)
        loss = loss if loss is not None else NoLoss()
        root = np.random.SeedSequence(seed)
        streams = iter(root.spawn(n * n))
        # Directed link (i -> j) per ordered pair; delivery dispatches to
        # the destination process.
        self.processes: dict[int, ConsensusProcess] = {}
        links: dict[tuple[int, int], SimLink] = {}
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                links[(i, j)] = SimLink(
                    self.sim,
                    delay,
                    loss,
                    rng=np.random.default_rng(next(streams)),
                    deliver=self._deliver_to(j),
                )

        def sender(i: int):
            def send(dest: int, msg) -> None:
                links[(i, dest)].send(msg)

            return send

        for p in range(n):
            self.processes[p] = ConsensusProcess(
                self.sim,
                p,
                n,
                values[p],
                sender(p),
                detector_factory,
                crash=self.crash_plans[p],
                heartbeat_interval=heartbeat_interval,
                retry_interval=retry_interval,
                start=start_time,
            )

    def _deliver_to(self, pid: int):
        def deliver(msg) -> None:
            self.processes[pid].deliver(msg)

        return deliver

    def run(self, horizon: float = 60.0) -> ConsensusOutcome:
        """Advance the simulation and collect the outcome.

        Stops early once every correct process has decided (checked at a
        coarse cadence to keep the run cheap).
        """
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        correct = {
            p for p, plan in self.crash_plans.items() if not plan.crashes
        }
        step = 1.0
        t = 0.0
        while t < horizon:
            t = min(t + step, horizon)
            self.sim.run(until=t)
            if all(self.processes[p].decided is not None for p in correct):
                break
        return ConsensusOutcome(
            decisions={
                p: proc.decided
                for p, proc in self.processes.items()
                if proc.decided is not None
            },
            decided_at={
                p: proc.decided_at
                for p, proc in self.processes.items()
                if proc.decided_at is not None
            },
            correct=correct,
            initial_values=dict(self.values),
            rounds={p: proc.rounds_started for p, proc in self.processes.items()},
        )
