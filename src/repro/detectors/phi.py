"""φ FD — the accrual failure detector of Hayashibara et al. (Eqs. 9-10).

Instead of a binary trust/suspect output, the φ FD exposes a continuous
suspicion level::

    φ(t_now) = −log10( P_later(t_now − T_last) )              (Eq. 9)

where ``P_later(t) = 1 − F(t)`` and ``F`` is the CDF of a normal
distribution whose mean ``μ`` and variance ``σ²`` are estimated from the
sampling window of inter-arrival times (Eq. 10).  Applications compare φ
against their own threshold ``Φ``; different applications can act at
different confidence levels from the same monitor (Section III).

Equivalent timeout
------------------
For replay and for hosting φ FD behind the timeout interface, note that
``φ(t) > Φ  ⟺  t > T_last + μ + σ·ndtri(1 − 10^{−Φ})``; the right-hand
side is the φ FD's *equivalent freshness point*.  In float64 the factor
``1 − 10^{−Φ}`` rounds to 1.0 once ``10^{−Φ} < 2^{−53}`` (Φ ≳ 15.95),
making the equivalent timeout infinite — this is precisely the "rounding
errors prevent computing points in the conservative range" behaviour the
paper reports for φ FD (Sections IV-B and V-A2), and we deliberately keep
it rather than computing in log space.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import log_ndtr, ndtri

try:  # scipy >= 1.9
    from scipy.special import ndtri_exp as _ndtri_exp
except ImportError:  # pragma: no cover - older scipy
    _ndtri_exp = None

from repro.errors import ConfigurationError, NotWarmedUpError
from repro.detectors.base import TimeoutFailureDetector
from repro.detectors.estimation import GapFiller
from repro.detectors.window import SampleWindow

__all__ = ["PhiFD", "phi_equivalent_timeout", "phi_value"]

#: Floor for the estimated σ of the inter-arrival distribution: a perfectly
#: regular window would otherwise make φ a step function and the equivalent
#: timeout exactly μ.
SIGMA_FLOOR = 1e-9


def phi_equivalent_timeout(threshold: float, mu: float, sigma: float) -> float:
    """Relative timeout at which φ crosses ``threshold`` (may be ``inf``).

    Solves ``−log10(1 − F(t)) = Φ`` for ``t``: ``t = μ + σ·ndtri(1−10^{−Φ})``.
    Returns ``inf`` when float64 rounding makes ``1 − 10^{−Φ} == 1.0`` —
    the paper's conservative-range cutoff.
    """
    if threshold <= 0:
        raise ConfigurationError(f"phi threshold must be > 0, got {threshold!r}")
    p = 1.0 - 10.0 ** (-threshold)
    if p >= 1.0:
        return math.inf
    return mu + max(sigma, SIGMA_FLOOR) * float(ndtri(p))


def phi_value(elapsed: float, mu: float, sigma: float) -> float:
    """φ suspicion level for ``elapsed = t_now − T_last`` (Eqs. 9-10).

    Computed through ``log_ndtr`` for numerical range (φ itself is exact
    far beyond the threshold-inversion cutoff; only the *inverse* suffers
    the float64 rounding limit, as in the original implementation).
    """
    sigma = max(sigma, SIGMA_FLOOR)
    z = (elapsed - mu) / sigma
    # P_later = 1 - ndtr(z) = ndtr(-z); phi = -log10(P_later).
    return float(-log_ndtr(-z) / math.log(10.0))


class PhiFD(TimeoutFailureDetector):
    """The φ accrual failure detector.

    Parameters
    ----------
    threshold:
        Application threshold ``Φ`` (paper sweep: ``Φ ∈ [0.5, 16]``).  Used
        for the binary view and the equivalent freshness point; the raw φ
        level is always available via :meth:`suspicion`.
    window_size:
        Inter-arrival sampling window ``WS`` (paper default 1000).
    gap_filler:
        Optional :class:`~repro.detectors.estimation.GapFiller`: when
        heartbeats are lost, fill the window with synthetic inter-arrivals
        instead of one huge sample.  ``None`` (default) matches the
        original φ FD, which samples raw inter-arrivals.
    """

    name = "phi"

    def __init__(
        self,
        threshold: float,
        *,
        window_size: int = 1000,
        gap_filler: GapFiller | None = None,
    ):
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold!r}")
        super().__init__(warmup=max(2, window_size))
        self.threshold = float(threshold)
        self._window = SampleWindow(window_size)
        self._gap_filler = gap_filler
        self._prev_arrival: float | None = None
        self._prev_seq: int | None = None

    @property
    def window_size(self) -> int:
        return self._window.capacity

    def interarrival_stats(self) -> tuple[float, float]:
        """Current ``(μ, σ)`` of the windowed inter-arrival distribution."""
        if len(self._window) == 0:
            raise NotWarmedUpError("phi FD has no inter-arrival samples yet")
        return self._window.mean, max(self._window.std, SIGMA_FLOOR)

    def _ingest(self, seq: int, arrival: float, send_time: float | None) -> None:
        if self._prev_arrival is not None:
            assert self._prev_seq is not None
            missing = seq - self._prev_seq - 1
            if missing > 0 and self._gap_filler is not None and len(self._window) >= 2:
                interval = max(self._window.mean, SIGMA_FLOOR)
                synth = self._gap_filler.fill(
                    self._prev_arrival, arrival, missing, interval
                )
                prev = self._prev_arrival
                for t in synth:
                    self._window.push(t - prev)
                    prev = t
                self._window.push(arrival - prev)
            else:
                self._window.push(arrival - self._prev_arrival)
        self._prev_arrival = arrival
        self._prev_seq = seq

    def _next_freshness(self) -> float:
        mu, sigma = self.interarrival_stats()
        return self.last_arrival + phi_equivalent_timeout(self.threshold, mu, sigma)

    def suspicion(self, now: float) -> float:
        """The φ level at ``now`` (accrual scale, not the overdue time)."""
        if not self.ready:
            raise NotWarmedUpError("phi FD still warming up")
        mu, sigma = self.interarrival_stats()
        return phi_value(float(now) - self.last_arrival, mu, sigma)

    def binary_threshold(self) -> float:
        return self.threshold

    #: ``z`` such that ``φ(μ + σz) = level``, cached per level: the wheel
    #: asks for the same three status-boundary levels on every heartbeat.
    _Z_CACHE: dict[float, float] = {}

    def suspicion_eta(self, level: float) -> float:
        """Absolute time at which φ reaches ``level`` (may be ``inf``).

        Inverted in log space (``ndtri_exp``), so unlike the equivalent
        *timeout* of :func:`phi_equivalent_timeout` this stays finite in
        the conservative range φ > 16 — snapshot hosts need the true
        crossing even where the paper's timeout inversion saturates.
        """
        if level <= 0.0:
            return -math.inf
        z = self._Z_CACHE.get(level)
        if z is None:
            if _ndtri_exp is not None:
                z = float(-_ndtri_exp(-level * math.log(10.0)))
            else:  # pragma: no cover - older scipy: saturates like Eq. 9
                p = 1.0 - 10.0 ** (-level)
                z = float(ndtri(p)) if p < 1.0 else math.inf
            self._Z_CACHE[level] = z
        if math.isinf(z):  # pragma: no cover - older scipy only
            return math.inf
        mu, sigma = self.interarrival_stats()
        return self.last_arrival + mu + sigma * z

    def phi_series(self, times: np.ndarray) -> np.ndarray:
        """Vectorized φ levels at several query times (diagnostics)."""
        if not self.ready:
            raise NotWarmedUpError("phi FD still warming up")
        mu, sigma = self.interarrival_stats()
        z = (np.asarray(times, dtype=np.float64) - self.last_arrival - mu) / sigma
        return -log_ndtr(-z) / math.log(10.0)

    def reset(self) -> None:
        self._window.clear()
        self._observed = 0
        self._prev_arrival = None
        self._prev_seq = None
        if self._gap_filler is not None:
            self._gap_filler.reset()
