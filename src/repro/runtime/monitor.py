"""Live monitor: a membership table fed by the UDP listener.

Binds the transport layer (:mod:`repro.runtime.udp`) to the cluster layer
(:mod:`repro.cluster.membership`): each incoming datagram becomes a
``heartbeat()`` on the table, and status queries read the per-node
detectors at the local clock.  Thread-model: everything runs on the
asyncio event loop; no locking needed.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.detectors.base import FailureDetector
from repro.cluster.membership import MembershipTable, NodeStatus
from repro.runtime.udp import UDPHeartbeatListener

__all__ = ["LiveMonitor"]


class LiveMonitor:
    """UDP-fed one-monitors-multiple failure detection monitor.

    Parameters
    ----------
    detector_factory:
        Per-node detector builder (``factory(node_id) -> FailureDetector``).
    bind:
        Local UDP address; port 0 picks a free port.
    clock:
        Arrival clock shared with status queries (monotonic by default).

    Usage::

        monitor = LiveMonitor(lambda nid: PhiFD(3.0, window_size=100))
        await monitor.start()
        print(monitor.address)      # where senders should aim
        ...
        print(monitor.statuses())
        await monitor.stop()
    """

    def __init__(
        self,
        detector_factory: Callable[[str], FailureDetector],
        *,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        clock: Callable[[], float] = time.monotonic,
        account_qos: bool = False,
    ):
        self.clock = clock
        self.table = MembershipTable(
            detector_factory, auto_register=True, account_qos=account_qos
        )
        self._listener = UDPHeartbeatListener(
            self._on_heartbeat, bind=bind, clock=clock
        )
        self.received = 0

    def _on_heartbeat(
        self, node_id: str, seq: int, send_time: float, arrival: float
    ) -> None:
        # The sender's wall stamp is NOT comparable to our monotonic clock;
        # detectors receive only the local arrival (Section II-B: no
        # synchronized clocks).
        self.table.heartbeat(node_id, seq, arrival, send_time=None)
        self.received += 1

    async def start(self) -> None:
        await self._listener.start()

    async def stop(self) -> None:
        await self._listener.stop()

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.address

    def status(self, node_id: str) -> NodeStatus:
        """Current status of one node."""
        if node_id not in self.table:
            return NodeStatus.UNKNOWN
        return self.table.node(node_id).status(self.clock())

    def statuses(self) -> dict[str, NodeStatus]:
        """Snapshot of every known node."""
        return self.table.statuses(self.clock())

    def summary(self) -> dict[NodeStatus, int]:
        return self.table.summary(self.clock())

    def qos(self, node_id: str):
        """Measured live QoS of one node (requires ``account_qos=True``)."""
        return self.table.node(node_id).qos(self.clock())
