"""Discrete-event simulator: engine, processes, crash detection, ping."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.detectors import ChenFD, FixedTimeoutFD, PhiFD
from repro.net import ConstantDelay, NormalDelay, BernoulliLoss
from repro.sim import (
    CrashPlan,
    HeartbeatSender,
    MonitorProcess,
    PingProcess,
    SimLink,
    Simulator,
)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0
        assert sim.processed == 3

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        log = []
        for tag in "xyz":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["x", "y", "z"]

    def test_until_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=2.0)
        assert log == [1]
        assert sim.now == 2.0
        assert sim.pending() == 1

    def test_cancel(self):
        sim = Simulator()
        log = []
        ev = sim.schedule(1.0, lambda: log.append(1))
        Simulator.cancel(ev)
        sim.run()
        assert log == []

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_nonfinite_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator().schedule(math.inf, lambda: None)

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.1, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_self_scheduling_process(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 5:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestCrashPlan:
    def test_never(self):
        p = CrashPlan.never()
        assert not p.crashes
        assert p.alive_at(1e12)

    def test_at(self):
        p = CrashPlan.at(5.0)
        assert p.crashes
        assert p.alive_at(4.999)
        assert not p.alive_at(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashPlan(-1.0)


class TestSimLink:
    def test_delivery_with_delay(self):
        sim = Simulator()
        got = []
        link = SimLink(
            sim, ConstantDelay(0.25), deliver=lambda p: got.append((sim.now, p))
        )
        sim.schedule(1.0, lambda: link.send("hello"))
        sim.run()
        assert got == [(1.25, "hello")]

    def test_loss_accounting(self):
        sim = Simulator()
        got = []
        link = SimLink(
            sim,
            ConstantDelay(0.01),
            BernoulliLoss(0.5),
            rng=np.random.default_rng(1),
            deliver=lambda p: got.append(p),
        )
        for i in range(1000):
            sim.schedule(i * 0.01, lambda i=i: link.send(i))
        sim.run()
        assert link.sent == 1000
        assert link.lost == 1000 - len(got)
        assert 0.4 < link.loss_rate < 0.6


class TestHeartbeatEndToEnd:
    def build(self, *, crash=math.inf, detector=None, loss=0.0, seed=0):
        sim = Simulator()
        rng = np.random.default_rng(seed)
        plan = CrashPlan(crash)
        det = detector if detector is not None else ChenFD(0.05, window_size=50)
        mon = MonitorProcess(sim, det, ground_truth=plan)
        link = SimLink(
            sim,
            NormalDelay(0.02, 0.003, minimum=0.005),
            BernoulliLoss(loss) if loss else None,
            rng=rng,
            deliver=mon.deliver,
        )
        snd = HeartbeatSender(
            sim, link, interval=0.1, jitter_std=0.01, crash=plan, rng=rng
        )
        return sim, mon, snd

    def test_sender_cadence(self):
        sim, mon, snd = self.build()
        sim.run(until=10.0)
        assert snd.next_seq == pytest.approx(100, abs=10)
        assert mon.finish().heartbeats > 80

    def test_crash_stops_sending(self):
        sim, mon, snd = self.build(crash=5.0)
        sim.run(until=20.0)
        assert snd.next_seq <= 55

    def test_detection_time_measured_against_ground_truth(self):
        sim, mon, _ = self.build(crash=30.0)
        sim.run(until=40.0)
        rep = mon.finish()
        # Crash at t=30; Chen with alpha=0.05 should detect within ~0.3 s.
        assert 0.0 < rep.detection_time < 1.0
        assert rep.transitions[-1][1] is True  # final state: suspecting

    def test_no_crash_means_nan_detection(self):
        sim, mon, _ = self.build()
        sim.run(until=20.0)
        assert math.isnan(mon.finish().detection_time)

    def test_live_suspects_query(self):
        sim, mon, _ = self.build(crash=10.0)
        sim.run(until=9.0)
        assert not mon.suspects_now()
        sim.run(until=15.0)
        assert mon.suspects_now()

    def test_wrong_suspicions_counted_for_aggressive_detector(self):
        sim, mon, _ = self.build(detector=FixedTimeoutFD(0.101), loss=0.05, seed=4)
        sim.run(until=60.0)
        rep = mon.finish()
        assert rep.qos.mistakes > 0
        assert rep.qos.query_accuracy < 1.0

    def test_stale_heartbeats_dropped(self):
        sim = Simulator()
        mon = MonitorProcess(sim, FixedTimeoutFD(1.0))
        from repro.sim.process import Heartbeat

        sim.schedule(0.0, lambda: mon.deliver(Heartbeat(0, 0.0)))
        sim.schedule(0.1, lambda: mon.deliver(Heartbeat(2, 0.05)))
        sim.schedule(0.2, lambda: mon.deliver(Heartbeat(1, 0.02)))  # stale
        sim.run()
        rep = mon.finish()
        assert rep.stale_dropped == 1
        assert rep.heartbeats == 2

    def test_accrual_detector_hosted(self):
        sim, mon, _ = self.build(detector=PhiFD(3.0, window_size=50), crash=30.0)
        sim.run(until=40.0)
        rep = mon.finish()
        assert rep.detection_time > 0.0

    def test_sender_validation(self):
        sim = Simulator()
        link = SimLink(sim, ConstantDelay(0.01))
        with pytest.raises(ConfigurationError):
            HeartbeatSender(sim, link, interval=0.0)
        with pytest.raises(ConfigurationError):
            HeartbeatSender(sim, link, interval=0.1, jitter_std=-1.0)


class TestPingProcess:
    def test_rtt_statistics(self):
        sim = Simulator()
        rng = np.random.default_rng(2)
        f = SimLink(sim, ConstantDelay(0.05), rng=rng)
        r = SimLink(sim, ConstantDelay(0.07), rng=rng)
        ping = PingProcess(sim, f, r, interval=1.0)
        sim.run(until=30.0)
        st = ping.stats()
        assert st.connected
        assert st.rtt_mean == pytest.approx(0.12)
        assert st.rtt_std == pytest.approx(0.0, abs=1e-9)
        assert st.sent == 31  # ticks at t=0..30 inclusive

    def test_loss_on_path(self):
        sim = Simulator()
        rng = np.random.default_rng(2)
        f = SimLink(sim, ConstantDelay(0.05), BernoulliLoss(0.5), rng=rng)
        r = SimLink(sim, ConstantDelay(0.05), rng=rng)
        ping = PingProcess(sim, f, r, interval=0.5)
        sim.run(until=100.0)
        st = ping.stats()
        assert 0.3 < st.loss_rate < 0.7
        assert st.connected

    def test_empty_stats(self):
        sim = Simulator()
        f = SimLink(sim, ConstantDelay(0.05))
        r = SimLink(sim, ConstantDelay(0.05))
        ping = PingProcess(sim, f, r, interval=1.0)
        st = ping.stats()
        assert not st.connected
        assert math.isnan(st.rtt_mean)

    def test_interval_validation(self):
        sim = Simulator()
        f = SimLink(sim, ConstantDelay(0.05))
        r = SimLink(sim, ConstantDelay(0.05))
        with pytest.raises(ConfigurationError):
            PingProcess(sim, f, r, interval=0.0)
