"""Exact multi-parameter Chen sweeps in one pass.

Sweeping Chen's margin α replays the same trace once per value, yet for
this detector the entire curve is a function of two fixed arrays: the
prediction *residuals* ``resid[r] = A[r+1] − EA[r]`` and the inter-arrival
gaps ``gap[r] = A[r+1] − A[r]``.  For any α (DESIGN.md §5 semantics):

* a wrong suspicion occurs at ``r`` iff ``resid[r] > α`` and ``gap[r] > 0``
  (suspicion can only start once the freshness point was computed, hence
  the clip at ``A[r]``);
* its duration is ``min(resid[r] − α, gap[r])``, i.e.
  ``(resid−α)₊ − (resid−gap−α)₊``;
* the detection time is exactly ``mean(EA − send) + α``.

Sorting ``resid`` and ``z = resid − gap`` once gives every α's mistake
count and total duration by binary search over prefix sums — the whole
K-point curve in ``O(n log n + K log n)`` instead of ``O(n·K)``.  The
result is *bit-compatible in exact arithmetic* with
``sweep_curve("chen", ...)`` (the test suite asserts tight
numerical agreement), and it is what makes dense planning sweeps
(:func:`repro.qos.planner.plan_chen_alpha`) essentially free.

The learned ``ml`` family admits the same trick with one twist: its
margin multiplies a *per-heartbeat* scale ``s[r] = jitter[r] + floor``
rather than adding a constant, so a mistake at ``r`` means
``resid[r] > m·s[r]``.  Dividing through by the (strictly positive)
scale reduces it to the Chen survival problem over the *ratios*
``resid/s``, with suffix sums of both the numerator and the scale
(:class:`_ScaledSurvival`) — still O(log n) per margin after one
O(n)-ish model pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.detectors.ml import ML_JITTER_FLOOR
from repro.errors import ConfigurationError
from repro.qos.area import QoSCurve
from repro.qos.spec import QoSReport
from repro.replay.vectorized import chen_expected_arrivals, ml_prediction_arrays
from repro.traces.trace import MonitorView

__all__ = ["ChenSweeper", "fast_chen_curve", "MLSweeper", "fast_ml_curve"]


@dataclass(frozen=True)
class _Survival:
    """Sorted samples + suffix sums: O(log n) tail counts and (v−α)₊ sums."""

    sorted_values: np.ndarray
    suffix_sum: np.ndarray  # suffix_sum[i] = sum(sorted_values[i:])

    @classmethod
    def of(cls, values: np.ndarray) -> "_Survival":
        v = np.sort(np.asarray(values, dtype=np.float64))
        suf = np.concatenate((np.cumsum(v[::-1])[::-1], [0.0]))
        return cls(sorted_values=v, suffix_sum=suf)

    def tail_count(self, alpha: float) -> int:
        """#{v > alpha}"""
        return int(
            self.sorted_values.size
            - np.searchsorted(self.sorted_values, alpha, side="right")
        )

    def tail_excess(self, alpha: float) -> float:
        """Σ (v − alpha)₊"""
        i = int(np.searchsorted(self.sorted_values, alpha, side="right"))
        n_tail = self.sorted_values.size - i
        return float(self.suffix_sum[i] - alpha * n_tail)


class ChenSweeper:
    """Precomputed state for arbitrarily many Chen-α evaluations.

    Build once per (view, window); then :meth:`qos_at` is O(log n) per α
    and :meth:`curve` produces a :class:`~repro.qos.area.QoSCurve`
    identical to the replay-based sweep.
    """

    def __init__(
        self,
        view: MonitorView,
        *,
        window: int = 1000,
        nominal_interval: float | None = None,
    ):
        if len(view) <= max(window, 2):
            raise ConfigurationError(
                f"view has {len(view)} heartbeats; need more than {max(window, 2)}"
            )
        self.window = window
        r0 = max(window, 2) - 1
        ea = chen_expected_arrivals(view, window, nominal_interval)
        arrivals = view.arrivals
        # Guarded pairs: r in [r0, R-2]; plus the trailing TD sample.
        ea_g = ea[r0:-1]
        resid = arrivals[r0 + 1 :] - ea_g
        gap = arrivals[r0 + 1 :] - arrivals[r0:-1]
        mask = gap > 0.0
        self._resid = _Survival.of(resid[mask])
        self._z = _Survival.of((resid - gap)[mask])
        self._td_base = float(np.mean(ea[r0:] - view.send_times[r0:]))
        self._samples = int(arrivals.size - r0)
        self._t_begin = float(arrivals[r0])
        self._t_end = float(arrivals[-1])

    def qos_at(self, alpha: float) -> QoSReport:
        """Exact replay QoS of Chen FD at margin ``alpha``."""
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha!r}")
        total = self._t_end - self._t_begin
        mistakes = self._resid.tail_count(alpha)
        mistake_time = self._resid.tail_excess(alpha) - self._z.tail_excess(alpha)
        mistake_time = min(max(mistake_time, 0.0), total)
        return QoSReport(
            detection_time=self._td_base + alpha,
            mistake_rate=mistakes / total,
            query_accuracy=1.0 - mistake_time / total,
            mistakes=mistakes,
            mistake_time=mistake_time,
            accounted_time=total,
            samples=self._samples,
        )

    def curve(self, alphas: Sequence[float]) -> QoSCurve:
        out = QoSCurve("chen")
        for a in alphas:
            out.add(float(a), self.qos_at(float(a)))
        return out


def fast_chen_curve(
    view: MonitorView,
    alphas: Sequence[float],
    *,
    window: int = 1000,
    nominal_interval: float | None = None,
) -> QoSCurve:
    """Drop-in fast equivalent of ``sweep_curve("chen", ...)``."""
    return ChenSweeper(
        view, window=window, nominal_interval=nominal_interval
    ).curve(alphas)


@dataclass(frozen=True)
class _ScaledSurvival:
    """Samples sorted by ``num/scale``: O(log n) tails of ``(num − m·scale)₊``.

    ``scale`` must be strictly positive, so ``num − m·scale > 0`` exactly
    when the ratio exceeds ``m`` — the per-sample scale version of
    :class:`_Survival`.
    """

    sorted_ratio: np.ndarray
    suffix_num: np.ndarray  # suffix_num[i] = Σ num[order][i:]
    suffix_scale: np.ndarray  # suffix_scale[i] = Σ scale[order][i:]

    @classmethod
    def of(cls, num: np.ndarray, scale: np.ndarray) -> "_ScaledSurvival":
        num = np.asarray(num, dtype=np.float64)
        scale = np.asarray(scale, dtype=np.float64)
        ratio = num / scale
        order = np.argsort(ratio, kind="stable")
        n_sorted = num[order]
        s_sorted = scale[order]
        return cls(
            sorted_ratio=ratio[order],
            suffix_num=np.concatenate((np.cumsum(n_sorted[::-1])[::-1], [0.0])),
            suffix_scale=np.concatenate((np.cumsum(s_sorted[::-1])[::-1], [0.0])),
        )

    def tail_count(self, m: float) -> int:
        """#{num/scale > m}"""
        return int(
            self.sorted_ratio.size
            - np.searchsorted(self.sorted_ratio, m, side="right")
        )

    def tail_excess(self, m: float) -> float:
        """Σ (num − m·scale)₊"""
        i = int(np.searchsorted(self.sorted_ratio, m, side="right"))
        return float(self.suffix_num[i] - m * self.suffix_scale[i])


class MLSweeper:
    """Precomputed state for arbitrarily many ml-margin evaluations.

    One pass of the online predictor fixes the prediction and jitter
    arrays; every margin of the sweep then reduces to survival-function
    lookups over the scaled residuals, exactly like :class:`ChenSweeper`
    but with the margin multiplying the learned per-heartbeat scale
    ``s[r] = jitter[r] + ML_JITTER_FLOOR`` instead of adding a constant.
    """

    def __init__(
        self,
        view: MonitorView,
        *,
        lr: float = 0.05,
        window: int = 16,
        decay: float = 0.1,
    ):
        r0 = max(window, 2) - 1
        if len(view) <= r0 + 1:
            raise ConfigurationError(
                f"view has {len(view)} heartbeats; need more than {r0 + 1}"
            )
        self.window = window
        pred, jit = ml_prediction_arrays(view, lr=lr, window=window, decay=decay)
        arrivals = view.arrivals
        scale = jit + ML_JITTER_FLOOR
        # Guarded pairs: r in [r0, R-2]; plus the trailing TD sample.
        resid = arrivals[r0 + 1 :] - (arrivals[r0:-1] + pred[r0:-1])
        gap = arrivals[r0 + 1 :] - arrivals[r0:-1]
        scale_g = scale[r0:-1]
        mask = gap > 0.0
        self._resid = _ScaledSurvival.of(resid[mask], scale_g[mask])
        self._z = _ScaledSurvival.of((resid - gap)[mask], scale_g[mask])
        self._td_base = float(
            np.mean(arrivals[r0:] + pred[r0:] - view.send_times[r0:])
        )
        self._scale_mean = float(np.mean(scale[r0:]))
        self._samples = int(arrivals.size - r0)
        self._t_begin = float(arrivals[r0])
        self._t_end = float(arrivals[-1])

    def qos_at(self, margin: float) -> QoSReport:
        """Exact replay QoS of the ml FD at the given margin."""
        if margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {margin!r}")
        total = self._t_end - self._t_begin
        mistakes = self._resid.tail_count(margin)
        mistake_time = self._resid.tail_excess(margin) - self._z.tail_excess(
            margin
        )
        mistake_time = min(max(mistake_time, 0.0), total)
        return QoSReport(
            detection_time=self._td_base + margin * self._scale_mean,
            mistake_rate=mistakes / total,
            query_accuracy=1.0 - mistake_time / total,
            mistakes=mistakes,
            mistake_time=mistake_time,
            accounted_time=total,
            samples=self._samples,
        )

    def curve(self, margins: Sequence[float]) -> QoSCurve:
        out = QoSCurve("ml")
        for m in margins:
            out.add(float(m), self.qos_at(float(m)))
        return out


def fast_ml_curve(
    view: MonitorView,
    margins: Sequence[float],
    *,
    lr: float = 0.05,
    window: int = 16,
    decay: float = 0.1,
) -> QoSCurve:
    """Drop-in fast equivalent of ``sweep_curve("ml", ...)``."""
    return MLSweeper(view, lr=lr, window=window, decay=decay).curve(margins)
