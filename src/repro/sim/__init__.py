"""Discrete-event simulation of the heartbeat system model (Fig. 2).

The trace replay of :mod:`repro.replay` evaluates detectors against logged
arrivals; this subpackage closes the remaining gap to a *live* system: a
deterministic event-driven simulator with heartbeat sender processes,
monitor processes hosting any detector, unreliable channels built from the
:mod:`repro.net` models, crash injection (the paper's crash-stop fault
model: "a crashed process does not recover"), and the low-frequency ping
probe the paper ran alongside its experiments.

It is the substrate for end-to-end detection-time measurements (crash →
permanent suspicion) that replay alone cannot produce, and for the cluster
scenarios of :mod:`repro.cluster`.
"""

from repro.sim.engine import Simulator
from repro.sim.process import HeartbeatSender, MonitorProcess, MonitorReport
from repro.sim.crash import CrashPlan
from repro.sim.pingd import PingProcess
from repro.sim.network import SimLink

__all__ = [
    "Simulator",
    "HeartbeatSender",
    "MonitorProcess",
    "MonitorReport",
    "CrashPlan",
    "PingProcess",
    "SimLink",
]
