"""repro — a reproduction of "A Self-tuning Failure Detection Scheme for
Cloud Computing Service" (Xiong et al., IEEE IPDPS 2012).

The library implements the paper's Self-tuning Failure Detector (SFD), the
general self-tuning feedback method it instantiates, the baseline adaptive
detectors it compares against (Chen FD, Bertier FD, the φ accrual FD), the
Chen-style QoS metric machinery, calibrated synthetic WAN traces matching
the published experiments, a vectorized trace-replay engine, a discrete-
event simulator with fault injection, an asyncio UDP live runtime, and the
experiment harness regenerating every table and figure of the evaluation.

Quickstart::

    from repro import SFDSpec, QoSRequirements, synthesize, WAN_1, replay

    trace = synthesize(WAN_1, n=50_000, seed=7)
    req = QoSRequirements(max_detection_time=0.5,
                          max_mistake_rate=0.01,
                          min_query_accuracy=0.995)
    result = replay(SFDSpec(requirements=req, window=500), trace)
    print(result.qos)            # measured (TD, MR, QAP)
    print(result.final_margin)   # the tuned safety margin
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    UnknownNodeError,
    NotWarmedUpError,
    InfeasibleQoSError,
    TraceFormatError,
    SimulationError,
)
from repro.qos import (
    QoSReport,
    QoSRequirements,
    Satisfaction,
    classify,
    QoSCurve,
    CurvePoint,
    pareto_front,
    covered_area,
)
from repro.detectors import (
    FailureDetector,
    TimeoutFailureDetector,
    ChenFD,
    BertierFD,
    PhiFD,
    FixedTimeoutFD,
    QuantileFD,
)
from repro.core import (
    SFD,
    SlotConfig,
    TuningRecord,
    FeedbackController,
    InfeasiblePolicy,
    TuningStatus,
    SelfTuningMonitor,
    AccrualService,
    ActionBinding,
    SuspicionLevel,
)
from repro.traces import (
    HeartbeatTrace,
    MonitorView,
    TraceStats,
    synthesize,
    WANProfile,
    WAN_JAIST,
    WAN_1,
    WAN_2,
    WAN_3,
    WAN_4,
    WAN_5,
    WAN_6,
    ALL_PROFILES,
    PLANETLAB_PROFILES,
)
from repro.consensus import ConsensusCluster, ConsensusOutcome
from repro.replay import (
    replay,
    ReplayResult,
    ReplaySpec,
    ChenSpec,
    BertierSpec,
    PhiSpec,
    FixedSpec,
    QuantileSpec,
    SFDSpec,
)
from repro.detectors.registry import (
    DetectorFamily,
    register,
    get as get_family,
    get_for_spec,
    families,
    parse_spec,
    spec_string,
    detector_factory,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "UnknownNodeError",
    "NotWarmedUpError",
    "InfeasibleQoSError",
    "TraceFormatError",
    "SimulationError",
    # qos
    "QoSReport",
    "QoSRequirements",
    "Satisfaction",
    "classify",
    "QoSCurve",
    "CurvePoint",
    "pareto_front",
    "covered_area",
    # detectors
    "FailureDetector",
    "TimeoutFailureDetector",
    "ChenFD",
    "BertierFD",
    "PhiFD",
    "FixedTimeoutFD",
    "QuantileFD",
    # core
    "SFD",
    "SlotConfig",
    "TuningRecord",
    "FeedbackController",
    "InfeasiblePolicy",
    "TuningStatus",
    "SelfTuningMonitor",
    "AccrualService",
    "ActionBinding",
    "SuspicionLevel",
    # traces
    "HeartbeatTrace",
    "MonitorView",
    "TraceStats",
    "synthesize",
    "WANProfile",
    "WAN_JAIST",
    "WAN_1",
    "WAN_2",
    "WAN_3",
    "WAN_4",
    "WAN_5",
    "WAN_6",
    "ALL_PROFILES",
    "PLANETLAB_PROFILES",
    # consensus (Section IV-B's claim, executable)
    "ConsensusCluster",
    "ConsensusOutcome",
    # replay
    "replay",
    "ReplayResult",
    "ReplaySpec",
    "ChenSpec",
    "BertierSpec",
    "PhiSpec",
    "FixedSpec",
    "QuantileSpec",
    "SFDSpec",
    # detector registry
    "DetectorFamily",
    "register",
    "get_family",
    "get_for_spec",
    "families",
    "parse_spec",
    "spec_string",
    "detector_factory",
    "__version__",
]
