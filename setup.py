"""Legacy shim so `python setup.py develop` works offline (no wheel pkg).

All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
