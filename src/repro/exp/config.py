"""Config-file-driven experiment runs: ``repro run experiments.toml``.

TFix+ (He et al.) argues that timeout experiments must be *declared*, not
scripted, to be reproducible; this module is that declaration layer.  A
TOML file lists traces (synthesized from a named WAN profile, or loaded
from ``.npz``/``.csv`` files) and sweeps (registry family or full spec
string + grid), and :func:`run_config` expands it through
:class:`~repro.exp.plan.ExperimentPlan`, executes it serially or across
processes, and archives every curve as JSON
(:func:`~repro.exp.archive.archive_curves`).

Schema::

    [run]                      # optional defaults
    jobs = 4                   # executor fan-out (CLI --jobs overrides)
    output = "curves"          # archive directory, relative to this file
    seed = 2012                # default synthesis seed

    [run.failures]             # optional failure policy (CLI overrides)
    timeout = 120.0            # per-job wall-clock ceiling [s]
    max_retries = 2            # extra attempts after the first failure
    backoff = 0.1              # first-retry delay [s], doubled per retry
    mode = "continue"          # or "fail_fast" (the default)

    [[trace]]
    name = "wan1"              # key sweeps refer to
    profile = "WAN-1"          # a repro.traces profile …
    n = 60000                  # heartbeats (default: scaled published count)
    seed = 7                   # per-trace override
    # … or a logged trace instead of a profile:
    # file = "wan1.npz"        # .npz (HeartbeatTrace.save), .csv, or a
    #                          # columnar store (repro trace pack) —
    #                          # stores replay zero-copy and ship to
    #                          # pool workers by path

    [[sweep]]
    trace = "wan1"             # optional when only one trace is declared
    detector = "chen"          # family, or spec string "chen:window=500"
    name = "chen-w500"         # curve key (default: family name)
    grid = [0.01, 0.1, 0.5]    # default: the family's registered grid
    params = { window = 500 }  # fixed spec fields (bare-family form only)

Every knob deliberately reuses an existing vocabulary: profiles are the
calibrated Section V cases, ``detector`` strings parse through
:func:`repro.detectors.registry.parse_spec`, grids default to each
family's aggressive → conservative registry grid.
"""

from __future__ import annotations

import sys
import time
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.detectors.registry import get as get_family
from repro.errors import ConfigurationError
from repro.exp.archive import archive_curves
from repro.exp.cache import CacheStats, SweepCache
from repro.exp.executors import ProcessPoolExecutor, SerialExecutor
from repro.exp.plan import ExperimentPlan, PlanResult, check_shard
from repro.exp.policy import FailurePolicy, FailureReport
from repro.exp.progress import RunProgress
from repro.traces import (
    ALL_PROFILES,
    LAN_REFERENCE,
    HeartbeatTrace,
    TraceStore,
    is_columnar,
    synthesize,
)

__all__ = [
    "ExperimentConfig",
    "RunOutcome",
    "load_config",
    "run_config",
    "merge_config",
    "shard_directory",
]

_PROFILES = {p.name: p for p in (*ALL_PROFILES, LAN_REFERENCE)}

_RUN_KEYS = {"jobs", "output", "seed", "failures"}
_TRACE_KEYS = {"name", "profile", "file", "n", "seed"}
_SWEEP_KEYS = {"trace", "detector", "name", "grid", "params"}
_FAILURE_KEYS = {
    "timeout",
    "max_retries",
    "backoff",
    "backoff_factor",
    "max_backoff",
    "jitter",
    "mode",
    "seed",
}


@dataclass
class ExperimentConfig:
    """A parsed experiment declaration, plan fully materialized."""

    path: Path
    plan: ExperimentPlan
    jobs: int = 1
    output: Path | None = None
    seed: int = 2012
    traces: list[dict[str, Any]] = field(default_factory=list)
    sweeps: list[dict[str, Any]] = field(default_factory=list)
    policy: FailurePolicy | None = None


@dataclass
class RunOutcome:
    """What one config run produced: curves, archive paths, timing.

    ``cache`` is the run's hit/miss accounting
    (:class:`~repro.exp.cache.CacheStats`), or ``None`` when the run
    bypassed the cache (``use_cache=False`` / ``--no-cache``).
    ``failures`` records quarantined jobs (empty on a clean run);
    ``shard`` is the ``(i, n)`` selector of a sharded run; ``resumed``
    is set when the run was an explicit ``--resume``.
    """

    result: PlanResult
    written: list[Path]
    jobs: int
    n_jobs: int
    elapsed: float
    cache: CacheStats | None = None
    failures: FailureReport = field(default_factory=FailureReport)
    shard: tuple[int, int] | None = None
    resumed: bool = False

    @property
    def clean(self) -> bool:
        """True when no job was quarantined."""
        return not self.failures


def shard_directory(output: Path, shard: tuple[int, int]) -> Path:
    """Where shard ``(i, n)``'s partial archive lands under ``output``."""
    return output / f"shard-{shard[0]}-of-{shard[1]}"


def _tty_progress_line(progress: RunProgress) -> None:
    """Repaint one carriage-return progress line on a TTY stderr."""
    end = "\n" if progress.state != "running" else ""
    sys.stderr.write(f"\r\x1b[K{progress.line()}{end}")
    sys.stderr.flush()


def _build_policy(table: Mapping[str, Any], where: str) -> FailurePolicy:
    if not isinstance(table, Mapping):
        raise ConfigurationError(f"{where} must be a table")
    _require_keys(table, _FAILURE_KEYS, where)
    kwargs: dict[str, Any] = {}
    for key in _FAILURE_KEYS:
        if key not in table:
            continue
        value = table[key]
        if key == "mode":
            kwargs[key] = str(value).replace("-", "_")
        elif key in ("max_retries", "seed"):
            kwargs[key] = int(value)
        else:
            kwargs[key] = float(value)
    try:
        return FailurePolicy(**kwargs)
    except ConfigurationError as exc:
        raise ConfigurationError(f"{where}: {exc}") from None


def _require_keys(table: Mapping[str, Any], allowed: set[str], where: str) -> None:
    unknown = sorted(set(table) - allowed)
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown key(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _build_trace(entry: Mapping[str, Any], base: Path, default_seed: int, where: str):
    _require_keys(entry, _TRACE_KEYS, where)
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"{where}: every trace needs a non-empty name")
    has_profile = "profile" in entry
    has_file = "file" in entry
    if has_profile == has_file:
        raise ConfigurationError(
            f"{where} ({name!r}): give exactly one of profile= or file="
        )
    if has_file:
        path = base / str(entry["file"])
        if not path.exists():
            raise ConfigurationError(f"{where} ({name!r}): no such trace file {path}")
        if path.suffix == ".csv":
            return name, HeartbeatTrace.from_csv(path, name=name)
        if is_columnar(path):
            # Kept as a store: replays zero-copy off the mapping, and the
            # plan ships only the path to pool workers.
            return name, TraceStore(path)
        return name, HeartbeatTrace.load(path)
    profile_name = str(entry["profile"])
    try:
        profile = _PROFILES[profile_name]
    except KeyError:
        raise ConfigurationError(
            f"{where} ({name!r}): unknown profile {profile_name!r}; "
            f"choose from {', '.join(_PROFILES)}"
        ) from None
    if "n" in entry:
        n = int(entry["n"])
    else:
        from repro.analysis.experiments import scaled_heartbeats

        n = scaled_heartbeats(profile)
    seed = int(entry.get("seed", default_seed))
    return name, synthesize(profile, n=n, seed=seed)


def _add_sweep(
    plan: ExperimentPlan, entry: Mapping[str, Any], trace_names: list[str], where: str
) -> dict[str, Any]:
    _require_keys(entry, _SWEEP_KEYS, where)
    detector = entry.get("detector")
    if not isinstance(detector, str) or not detector.strip():
        raise ConfigurationError(f"{where}: every sweep needs detector=")
    trace = entry.get("trace")
    if trace is None:
        if len(trace_names) != 1:
            raise ConfigurationError(
                f"{where}: trace= is required when several traces are declared"
            )
        trace = trace_names[0]
    grid = entry.get("grid")
    if grid is not None:
        if not isinstance(grid, list) or not all(
            isinstance(v, (int, float)) for v in grid
        ):
            raise ConfigurationError(f"{where}: grid must be a list of numbers")
        grid = [float(v) for v in grid]
    params = entry.get("params", {})
    if not isinstance(params, Mapping):
        raise ConfigurationError(f"{where}: params must be a table")
    family_name, _, spec_params = detector.partition(":")
    family = get_family(family_name.strip())
    name = entry.get("name", family.name)
    if spec_params.strip():
        if params:
            raise ConfigurationError(
                f"{where}: give parameters either in the detector spec string "
                "or under params=, not both"
            )
        base = family.parse(spec_params)
        plan.add_sweep(str(trace), family, grid, name=str(name), base=base)
    else:
        plan.add_sweep(str(trace), family, grid, name=str(name), **dict(params))
    return {"trace": str(trace), "name": str(name), "detector": detector}


def load_config(path: str | Path) -> ExperimentConfig:
    """Parse one ``experiments.toml`` and materialize its plan.

    Traces are synthesized/loaded eagerly, so errors surface at load time
    with the config file named, not mid-run in a worker.
    """
    path = Path(path)
    try:
        with path.open("rb") as fh:
            data = tomllib.load(fh)
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from exc
    except tomllib.TOMLDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid TOML: {exc}") from exc

    run = data.get("run", {})
    if not isinstance(run, Mapping):
        raise ConfigurationError(f"{path}: [run] must be a table")
    _require_keys(run, _RUN_KEYS, f"{path}: [run]")
    seed = int(run.get("seed", 2012))
    jobs = int(run.get("jobs", 1))
    if jobs < 0:
        raise ConfigurationError(f"{path}: [run] jobs must be >= 0")
    output = run.get("output")
    policy = None
    if "failures" in run:
        policy = _build_policy(run["failures"], f"{path}: [run.failures]")

    traces = data.get("trace", [])
    sweeps = data.get("sweep", [])
    if not isinstance(traces, list) or not traces:
        raise ConfigurationError(f"{path}: declare at least one [[trace]]")
    if not isinstance(sweeps, list) or not sweeps:
        raise ConfigurationError(f"{path}: declare at least one [[sweep]]")

    plan = ExperimentPlan()
    trace_meta: list[dict[str, Any]] = []
    for i, entry in enumerate(traces):
        where = f"{path}: [[trace]] #{i + 1}"
        name, trace = _build_trace(entry, path.parent, seed, where)
        plan.add_trace(name, trace)
        trace_meta.append(
            {
                "name": name,
                "source": entry.get("profile", entry.get("file")),
                "heartbeats": trace.total_sent,
            }
        )
    trace_names = [t["name"] for t in trace_meta]
    sweep_meta = [
        _add_sweep(plan, entry, trace_names, f"{path}: [[sweep]] #{i + 1}")
        for i, entry in enumerate(sweeps)
    ]
    return ExperimentConfig(
        path=path,
        plan=plan,
        jobs=jobs,
        output=(path.parent / output) if output else None,
        seed=seed,
        traces=trace_meta,
        sweeps=sweep_meta,
        policy=policy,
    )


def run_config(
    config: ExperimentConfig,
    *,
    jobs: int | None = None,
    output: str | Path | None = None,
    archive: bool = True,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
    policy: FailurePolicy | None = None,
    shard: tuple[int, int] | None = None,
    resume: bool = False,
    instruments=None,
    progress: RunProgress | None = None,
) -> RunOutcome:
    """Execute a loaded config and archive its curves.

    ``jobs``/``output`` override the config's ``[run]`` table (the CLI
    flags).  ``jobs <= 1`` runs serially; anything larger fans out via
    :class:`~repro.exp.executors.ProcessPoolExecutor` (``0`` = every
    core).  Curves land under ``output`` (default: ``<config stem>_curves``
    next to the config file) unless ``archive=False``.

    Runs are incremental by default: results are cached under
    ``cache_dir`` (default: a ``cache/`` subdirectory of the archive
    directory) keyed by trace fingerprint + family + spec, and each
    completed job is persisted *as it finishes*, so a run killed partway
    leaves its work on disk.  ``use_cache=False`` (``--no-cache``)
    bypasses both reads and writes; with ``archive=False`` and no
    explicit ``cache_dir`` there is nowhere to persist, so the cache is
    skipped too.

    ``policy`` overrides the config's ``[run.failures]`` table.
    ``resume=True`` (``--resume``) asserts the crash-safe path: it
    requires the cache and reports how much prior work was reused.
    ``shard=(i, n)`` executes only every ``n``-th job (offset ``i``) and
    archives the partial curves under ``shard-<i>-of-<n>/`` inside the
    output directory, while sharing the *top-level* cache directory with
    the other shards — :func:`merge_config` reassembles the full,
    bit-identical archive once every shard has run.

    Every archiving run heartbeats a crash-safe ``RUN_PROGRESS.json``
    into its archive directory (shard directory for sharded runs) and,
    when stderr is a TTY, repaints a live progress line.  Pass your own
    :class:`~repro.exp.progress.RunProgress` to redirect or silence it.
    """
    n = config.jobs if jobs is None else int(jobs)
    pol = policy if policy is not None else config.policy
    executor = (
        ProcessPoolExecutor(jobs=n, policy=pol)
        if n != 1
        else SerialExecutor(policy=pol)
    )
    directory = (
        Path(output)
        if output is not None
        else (config.output or config.path.parent / f"{config.path.stem}_curves")
    )
    if shard is not None:
        shard = check_shard(shard)
    if resume and not use_cache:
        raise ConfigurationError(
            "--resume needs the cache (it is how completed work is found); "
            "drop --no-cache"
        )
    cache = None
    if use_cache:
        if cache_dir is not None:
            cache = SweepCache(cache_dir)
        elif archive:
            # Shards share the top-level cache, not their own subdirs —
            # that shared directory is what merge reassembles from.
            cache = SweepCache(directory / "cache")
        elif resume:
            raise ConfigurationError(
                "--resume with --no-archive needs an explicit --cache-dir"
            )
    target = directory if shard is None else shard_directory(directory, shard)
    if progress is None:
        progress = RunProgress(
            target / "RUN_PROGRESS.json" if archive else None,
            on_update=_tty_progress_line if sys.stderr.isatty() else None,
            meta={"config": str(config.path)},
        )
    t0 = time.perf_counter()
    result = config.plan.run(
        executor,
        cache=cache,
        policy=pol,
        shard=shard,
        instruments=instruments,
        progress=progress,
    )
    elapsed = time.perf_counter() - t0
    effective = getattr(executor, "jobs", 1)
    written: list[Path] = []
    if archive:
        meta: dict[str, Any] = {
            "config": str(config.path),
            "seed": config.seed,
            "jobs": effective,
            "replays": len(config.plan),
            "wall_s": elapsed,
            "traces": config.traces,
            "sweeps": config.sweeps,
        }
        if shard is not None:
            meta["shard"] = {"index": shard[0], "count": shard[1]}
        written = archive_curves(
            result.curves, target, meta=meta, failures=result.failures
        )
    return RunOutcome(
        result=result,
        written=written,
        jobs=effective,
        n_jobs=len(config.plan),
        elapsed=elapsed,
        cache=result.cache,
        failures=result.failures,
        shard=shard,
        resumed=resume,
    )


class _MergeExecutor:
    """Executor that refuses to execute: merge must be 100% cache hits.

    :func:`merge_config` runs the plan with this executor so curve
    reassembly, ordering, and archiving reuse the one battle-tested
    path; any job the cache cannot satisfy names itself here instead of
    silently re-running (a merge is a *reassembly*, never a replay).
    """

    jobs = 0  # advertised fan-out: merge replays nothing

    def run(self, jobs, views, *, instruments=None):
        named = "; ".join(j.describe() for j in jobs[:3])
        raise ConfigurationError(
            f"merge: {len(jobs)} grid point(s) missing from the cache "
            f"({named}{'…' if len(jobs) > 3 else ''}) — run the missing "
            "shard(s) first, or re-run quarantined jobs to completion"
        )


def merge_config(
    config: ExperimentConfig,
    *,
    output: str | Path | None = None,
    cache_dir: str | Path | None = None,
) -> RunOutcome:
    """Reassemble the full curve archive from completed shards' cache.

    Every shard of a ``repro run --shard i/N`` fleet stores its reports
    into the shared content-addressed cache; once all shards have run,
    this loads every grid point from that cache — replaying nothing —
    and writes the merged archive exactly as an unsharded run would
    have.  Content addressing (view fingerprint + family + spec) is what
    makes the merged curves *bit-identical* to a clean single-process
    run.  Raises :class:`~repro.errors.ConfigurationError`, naming the
    missing jobs, if any shard has not completed.
    """
    directory = (
        Path(output)
        if output is not None
        else (config.output or config.path.parent / f"{config.path.stem}_curves")
    )
    cache = SweepCache(cache_dir if cache_dir is not None else directory / "cache")
    t0 = time.perf_counter()
    result = config.plan.run(_MergeExecutor(), cache=cache)
    elapsed = time.perf_counter() - t0
    written = archive_curves(
        result.curves,
        directory,
        meta={
            "config": str(config.path),
            "seed": config.seed,
            "jobs": 0,
            "merged": True,
            "replays": len(config.plan),
            "wall_s": elapsed,
            "traces": config.traces,
            "sweeps": config.sweeps,
        },
    )
    return RunOutcome(
        result=result,
        written=written,
        jobs=0,
        n_jobs=len(config.plan),
        elapsed=elapsed,
        cache=result.cache,
    )
