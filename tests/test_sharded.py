"""Sharded membership parity, the deadline wheel, and batched ingest.

The sharded table's contract is *bit-for-bit equivalence* with the flat
:class:`~repro.cluster.membership.MembershipTable` — same statuses (and
iteration order), same transition edges at the same timestamps, same
restart/stale accounting, same QoS reports, same expiries — while doing
O(changed) work per query.  These tests prove the equivalence under
chaos-style heartbeat schedules (reorders, restarts, stale duplicates,
interleaved queries) for every detector family, and cover the batch
ingest path end to end.
"""

import asyncio
import math
import random

import pytest

from repro.errors import ConfigurationError, NotWarmedUpError
from repro.core import SFD
from repro.qos.spec import QoSRequirements
from repro.cluster import (
    DeadlineWheel,
    MembershipTable,
    MonitorGroup,
    NodeStatus,
    ShardedMembershipTable,
)
from repro.detectors import (
    BertierFD,
    ChenFD,
    FixedTimeoutFD,
    MLFD,
    PhiFD,
    QuantileFD,
)
from repro.runtime import (
    FaultInjector,
    FaultPlan,
    UDPHeartbeatListener,
    pack_heartbeat,
)

# --------------------------------------------------------------------- #
# DeadlineWheel
# --------------------------------------------------------------------- #


class TestDeadlineWheel:
    def test_due_pops_in_order_and_unschedules(self):
        w = DeadlineWheel(0.1)
        w.schedule("a", 0.35)
        w.schedule("b", 0.05)
        w.schedule("c", 9.0)
        assert len(w) == 3 and "a" in w
        assert sorted(w.due(0.4)) == ["a", "b"]
        assert len(w) == 1 and "a" not in w and "c" in w
        assert w.due(0.4) == []

    def test_reschedule_moves_single_position(self):
        w = DeadlineWheel(0.1)
        w.schedule("a", 0.15)
        w.schedule("a", 5.0)  # moved: must NOT pop at the old deadline
        assert w.due(1.0) == []
        assert w.due(5.0) == ["a"]
        assert len(w) == 0

    def test_infinite_due_cancels(self):
        w = DeadlineWheel(0.1)
        w.schedule("a", 0.15)
        w.schedule("a", math.inf)
        assert "a" not in w
        assert w.due(100.0) == []

    def test_cancel_unknown_is_noop(self):
        w = DeadlineWheel(0.1)
        w.cancel("ghost")
        assert len(w) == 0

    def test_past_due_schedules_pop_on_next_call(self):
        w = DeadlineWheel(0.1)
        w.schedule("a", 3.0)
        assert w.due(10.0) == ["a"]
        w.schedule("a", 3.0)  # bucket start long past "now"
        assert w.due(10.0) == ["a"]

    def test_bucket_start_never_later_than_deadline(self):
        # A node must be popped by the first call past its true deadline,
        # even when the deadline sits at the very end of a bucket.
        w = DeadlineWheel(0.05)
        w.schedule("a", 0.0999999)
        assert w.due(0.1) == ["a"]

    def test_granularity_validation(self):
        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(ConfigurationError):
                DeadlineWheel(bad)


# --------------------------------------------------------------------- #
# flat-vs-sharded parity under chaos schedules
# --------------------------------------------------------------------- #

FACTORIES = {
    "chen": lambda nid: ChenFD(0.1, window_size=8),
    "phi": lambda nid: PhiFD(2.0, window_size=8),
    "fixed": lambda nid: FixedTimeoutFD(0.3),
    "bertier": lambda nid: BertierFD(window_size=8),
    "quantile": lambda nid: QuantileFD(0.99, window_size=8),
    "ml": lambda nid: MLFD(2.0, window_size=8),
    "sfd": lambda nid: SFD(QoSRequirements(0.3, 2.0, 0.98), window_size=8),
}


def chaos_events(seed: int, *, nodes: int = 10, steps: int = 2500):
    """One time-ordered stream of heartbeats (with restarts, stale
    duplicates, silent spells) and interleaved queries."""
    rng = random.Random(seed)
    ids = [f"n{i:02d}" for i in range(nodes)]
    seqs = {nid: 0 for nid in ids}
    silent_until = {nid: 0.0 for nid in ids}
    t = 0.0
    events = []
    for _ in range(steps):
        t += rng.uniform(0.002, 0.02)
        nid = rng.choice(ids)
        r = rng.random()
        if r < 0.015:
            silent_until[nid] = t + rng.uniform(0.5, 2.0)  # crash spell
        elif r < 0.03:
            seqs[nid] = rng.randint(0, 2)  # restart: sequence far back
        if t >= silent_until[nid]:
            if rng.random() < 0.05 and seqs[nid] > 0:
                # stale / reordered duplicate
                events.append(
                    ("hb", nid, max(seqs[nid] - rng.randint(1, 6), 0), t)
                )
            else:
                events.append(("hb", nid, seqs[nid], t))
                seqs[nid] += 1
        if rng.random() < 0.06:
            kind = rng.choice(
                ["statuses", "summary", "select", "status_of", "expire"]
            )
            events.append(("query", kind, rng.choice(ids), t))
    return events


def run_parity(
    factory,
    seed: int,
    *,
    shards: int = 4,
    steps: int = 2500,
    batched: bool = False,
):
    """Feed the same chaos stream to both tables and compare everything.

    ``batched=True`` routes the sharded side through ``heartbeat_batch``
    (QoS accounting off, so its steady-state fast path engages) and
    flushes pending heartbeats before every query.
    """
    account = not batched
    flat_tr, shard_tr = [], []
    flat = MembershipTable(
        factory,
        account_qos=account,
        on_transition=lambda nid, old, new, at: flat_tr.append(
            (nid, old.value, new.value, at)
        ),
    )
    sharded = ShardedMembershipTable(
        factory,
        account_qos=account,
        shards=shards,
        granularity=0.01,
        on_transition=lambda nid, old, new, at: shard_tr.append(
            (nid, old.value, new.value, at)
        ),
    )
    pending: list[tuple[str, int, float, None]] = []

    def flush():
        if pending:
            assert flat.heartbeat_batch(pending) == sharded.heartbeat_batch(
                pending
            )
            pending.clear()

    t = 0.0
    for ev in chaos_events(seed, steps=steps):
        if ev[0] == "hb":
            _, nid, seq, t = ev
            if batched:
                pending.append((nid, seq, t, None))
                continue
            a = flat.heartbeat(nid, seq, t)
            b = sharded.heartbeat(nid, seq, t)
            assert (a.heartbeats, a.restarts, a.stale_dropped) == (
                b.heartbeats,
                b.restarts,
                b.stale_dropped,
            )
        else:
            flush()
            _, kind, nid, t = ev
            if kind == "statuses":
                fa, sh = flat.statuses(t), sharded.statuses(t)
                assert fa == sh
                assert list(fa) == list(sh)  # iteration order too
            elif kind == "summary":
                assert flat.summary(t) == sharded.summary(t)
            elif kind == "select":
                for status in NodeStatus:
                    assert sorted(flat.select(t, status)) == sorted(
                        sharded.select(t, status)
                    )
            elif kind == "status_of":
                assert flat.status_of(nid, t) == sharded.status_of(nid, t)
                assert flat.status_of("ghost", t) is NodeStatus.UNKNOWN
                assert sharded.status_of("ghost", t) is NodeStatus.UNKNOWN
            else:  # expire
                assert flat.expire(t, silent_for=5.0) == sharded.expire(
                    t, silent_for=5.0
                )
    # Final full-state comparison.
    flush()
    end = t + 0.5
    assert flat.statuses(end) == sharded.statuses(end)
    assert flat.restarts == sharded.restarts
    for state in flat.nodes():
        twin = sharded.node(state.node_id)
        assert (
            state.heartbeats,
            state.last_seq,
            state.restarts,
            state.stale_dropped,
        ) == (twin.heartbeats, twin.last_seq, twin.restarts, twin.stale_dropped)
    # Same transitions at the same timestamps (ordering may differ across
    # nodes popped in the same advance).
    assert sorted(flat_tr) == sorted(shard_tr)
    for state in flat.nodes():
        twin = sharded.node(state.node_id)
        try:
            fq = state.qos(end)
        except NotWarmedUpError:
            with pytest.raises(NotWarmedUpError):
                twin.qos(end)
            continue
        sq = twin.qos(end)
        assert (fq.detection_time, fq.mistake_rate, fq.query_accuracy) == (
            sq.detection_time,
            sq.mistake_rate,
            sq.query_accuracy,
        )


class TestFlatShardedParity:
    @pytest.mark.parametrize("family", sorted(FACTORIES))
    def test_chaos_schedule_parity(self, family):
        run_parity(FACTORIES[family], seed=hash(family) % 1000)

    @pytest.mark.parametrize("seed", [7, 21])
    def test_parity_across_seeds_and_shard_counts(self, seed):
        run_parity(FACTORIES["phi"], seed=seed, shards=1 + seed % 7)

    def test_single_shard_degenerate(self):
        run_parity(FACTORIES["fixed"], seed=3, shards=1, steps=1200)

    @pytest.mark.parametrize("family", sorted(FACTORIES))
    def test_batched_fast_path_parity(self, family):
        """`heartbeat_batch` with QoS accounting off engages the fused
        steady-state fast path (inline linear-timeout lane for fixed /
        chen / bertier / quantile / ml — the learned detector overrides
        no suspicion hooks, so it qualifies — generic lane for phi /
        sfd); the sharded side must still match a per-item flat table
        verdict under the same chaos schedule."""
        run_parity(FACTORIES[family], seed=1 + hash(family) % 997, batched=True)


# --------------------------------------------------------------------- #
# sharded-specific behaviour
# --------------------------------------------------------------------- #


class TestShardedTable:
    def test_shards_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedMembershipTable(FACTORIES["fixed"], shards=0)

    def test_advance_counts_and_hook(self):
        calls = []
        table = ShardedMembershipTable(
            lambda nid: FixedTimeoutFD(0.1),
            granularity=0.01,
            on_advance=lambda popped, changed: calls.append((popped, changed)),
        )
        for seq in range(3):
            table.heartbeat("a", seq, 0.1 * seq)
        assert table.statuses(0.25)["a"] is NodeStatus.ACTIVE
        # Past the freshness point: exactly one transition pops.
        changed = table.advance(1.0)
        assert changed == 1
        assert table.statuses(1.0)["a"] is NodeStatus.SUSPECT
        assert any(c == (1, 1) for c in calls)
        # SUSPECT is terminal for a binary detector: nothing left to pop.
        assert table.advance(2.0) == 0

    def test_heartbeat_batch_counts_accepted_only(self):
        table = ShardedMembershipTable(lambda nid: FixedTimeoutFD(0.1))
        batch = [
            ("a", 0, 0.0, None),
            ("a", 1, 0.1, None),
            ("b", 0, 0.1, None),
            ("a", 1, 0.15, None),  # duplicate: stale, not accepted
        ]
        assert table.heartbeat_batch(batch) == 3
        assert table.node("a").stale_dropped == 1

    def test_select_reads_index_sets(self):
        table = ShardedMembershipTable(lambda nid: FixedTimeoutFD(0.1))
        for nid in ("a", "b", "c"):
            for seq in range(3):
                table.heartbeat(nid, seq, 0.1 * seq)
        assert sorted(table.select(0.25, NodeStatus.ACTIVE)) == ["a", "b", "c"]
        table.heartbeat("c", 3, 5.0)  # a and b are long overdue now
        assert sorted(table.select(5.05, NodeStatus.SUSPECT)) == ["a", "b"]
        assert table.select(5.05, NodeStatus.ACTIVE) == ["c"]

    def test_remove_cleans_all_structures(self):
        table = ShardedMembershipTable(lambda nid: FixedTimeoutFD(0.1), shards=2)
        for seq in range(3):
            table.heartbeat("a", seq, 0.1 * seq)
        table.remove("a")
        assert "a" not in table
        assert table.statuses(1.0) == {}
        assert table.summary(1.0)[NodeStatus.ACTIVE] == 0
        assert table.expire(100.0, silent_for=1.0) == []
        table.remove("a")  # idempotent

    def test_expire_refreshes_stale_heap_entries(self):
        table = ShardedMembershipTable(lambda nid: FixedTimeoutFD(0.1))
        table.heartbeat("a", 0, 0.0)  # heap entry pushed at arrival 0.0
        table.heartbeat("a", 1, 4.0)  # entry now out of date
        # Horizon past the *pushed* arrival but not the latest one: the
        # entry is refreshed, not evicted.
        assert table.expire(5.0, silent_for=2.0) == []
        assert "a" in table
        assert table.expire(10.0, silent_for=2.0) == ["a"]

    def test_expire_never_heartbeat_nodes_kept(self):
        table = ShardedMembershipTable(
            lambda nid: FixedTimeoutFD(0.1), auto_register=False
        )
        table.register("quiet")
        assert table.expire(100.0, silent_for=1.0) == []
        with pytest.raises(ConfigurationError):
            table.expire(1.0, silent_for=0.0)

    def test_transition_listeners_and_epoch(self):
        seen = []
        table = ShardedMembershipTable(lambda nid: FixedTimeoutFD(0.1))
        table.add_transition_listener(
            lambda nid, old, new, at: seen.append((nid, old, new))
        )
        e0 = table.epoch
        for seq in range(3):
            table.heartbeat("a", seq, 0.1 * seq)
        table.advance(5.0)
        assert ("a", NodeStatus.UNKNOWN, NodeStatus.ACTIVE) in seen
        assert ("a", NodeStatus.ACTIVE, NodeStatus.SUSPECT) in seen
        assert table.epoch > e0
        assert table.node("a").status_epoch == table.epoch

    def test_not_warmed_up_detectors_fall_back_to_always_set(self):
        # SFD cannot invert its curve until the slot logic warms up; the
        # node must still classify correctly on every query (flat cost).
        table = ShardedMembershipTable(
            lambda nid: SFD(QoSRequirements(0.3, 2.0, 0.98), window_size=8),
            shards=1,
        )
        flat = MembershipTable(
            lambda nid: SFD(QoSRequirements(0.3, 2.0, 0.98), window_size=8)
        )
        t = 0.0
        for seq in range(4):  # below window: not ready yet
            t = 0.1 * seq
            table.heartbeat("a", seq, t)
            flat.heartbeat("a", seq, t)
        assert table.statuses(t + 0.05) == flat.statuses(t + 0.05)


# --------------------------------------------------------------------- #
# batched listener
# --------------------------------------------------------------------- #


@pytest.fixture()
def run():
    def _run(coro):
        return asyncio.run(coro)

    return _run


async def _blast(address, payloads):
    loop = asyncio.get_running_loop()
    transport, _ = await loop.create_datagram_endpoint(
        asyncio.DatagramProtocol, remote_addr=address
    )
    for p in payloads:
        transport.sendto(p)
    await asyncio.sleep(0.1)
    transport.close()


class TestBatchedListener:
    def test_exactly_one_callback_required(self):
        with pytest.raises(ConfigurationError):
            UDPHeartbeatListener()
        with pytest.raises(ConfigurationError):
            UDPHeartbeatListener(lambda *a: None, on_batch=lambda b: None)
        with pytest.raises(ConfigurationError):
            UDPHeartbeatListener(lambda *a: None, max_batch=0)

    def test_batch_path_delivers_all_with_per_datagram_stamps(self, run):
        async def main():
            batches = []
            listener = UDPHeartbeatListener(on_batch=batches.append)
            await listener.start()
            await _blast(
                listener.address,
                [pack_heartbeat("peer", seq, 100.0 + seq) for seq in range(20)],
            )
            await listener.stop()
            return batches

        batches = run(main())
        flat = [item for b in batches for item in b]
        assert [(nid, seq) for nid, seq, _, _ in flat] == [
            ("peer", s) for s in range(20)
        ]
        arrivals = [arr for _, _, arr, _ in flat]
        assert arrivals == sorted(arrivals)
        assert [st for _, _, _, st in flat] == [100.0 + s for s in range(20)]

    def test_batched_and_single_listeners_agree_under_faults(self, run):
        """The same fault-injected datagram stream produces the same
        accepted heartbeats whether consumed per-datagram or per-batch."""

        async def main():
            single, batched = [], []
            l1 = UDPHeartbeatListener(
                lambda nid, seq, st, arr: single.append((nid, seq, st))
            )
            l2 = UDPHeartbeatListener(
                on_batch=lambda b: batched.extend(
                    (nid, seq, st) for nid, seq, _, st in b
                )
            )
            await l1.start()
            await l2.start()
            plan = FaultPlan(drop=0.3, truncate=0.1)
            inj1 = FaultInjector(l1.address, plan=plan, seed=9)
            inj2 = FaultInjector(l2.address, plan=plan, seed=9)
            await inj1.start()
            await inj2.start()
            payloads = [
                pack_heartbeat(f"n{i % 4}", i // 4, float(i)) for i in range(80)
            ]
            loop = asyncio.get_running_loop()
            t1, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol, remote_addr=inj1.address
            )
            t2, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol, remote_addr=inj2.address
            )
            for p in payloads:
                t1.sendto(p)
                t2.sendto(p)
                await asyncio.sleep(0.001)
            await asyncio.sleep(0.2)
            t1.close()
            t2.close()
            await inj1.stop()
            await inj2.stop()
            m1, m2 = l1.malformed, l2.malformed
            await l1.stop()
            await l2.stop()
            return single, batched, inj1.schedule, inj2.schedule, m1, m2

        single, batched, sched1, sched2, m1, m2 = run(main())
        assert sched1 == sched2  # same seed -> same per-datagram fates
        assert single == batched
        assert len(single) > 20  # the stream actually survived the faults
        assert m1 == m2

    def test_malformed_flood_bulk_accounting(self, run):
        async def main():
            listener = UDPHeartbeatListener(
                on_batch=lambda b: None, malformed_limit=10
            )
            await listener.start()
            await _blast(listener.address, [b"garbage"] * 40)
            out = (listener.malformed, listener.malformed_suppressed)
            await listener.stop()
            return out

        malformed, suppressed = run(main())
        assert malformed == 10
        assert suppressed == 30

    def test_batch_callback_error_counted_once_per_batch(self, run):
        async def main():
            def boom(batch):
                raise RuntimeError("consumer bug")

            listener = UDPHeartbeatListener(on_batch=boom)
            await listener.start()
            await _blast(
                listener.address,
                [pack_heartbeat("peer", s, 0.0) for s in range(5)],
            )
            errors = listener.callback_errors
            await listener.stop()
            return errors

        errors = run(main())
        assert 1 <= errors <= 5  # once per drain, never once per datagram


# --------------------------------------------------------------------- #
# MonitorGroup epoch cache
# --------------------------------------------------------------------- #


def _fed_table(heartbeats_until: float, *, nodes=("a", "b")):
    table = ShardedMembershipTable(lambda nid: FixedTimeoutFD(0.1))
    t, seq = 0.0, 0
    while t <= heartbeats_until:
        for nid in nodes:
            table.heartbeat(nid, seq, t)
        seq += 1
        t += 0.1
    return table


class TestMonitorGroupCache:
    def test_cached_verdict_matches_fresh_aggregation(self):
        group = MonitorGroup()
        group.add_monitor("m1", _fed_table(1.0))
        group.add_monitor("m2", _fed_table(0.4))  # m2 stops hearing early
        v = group.verdict("a", now=1.05)
        assert v.observing == 2
        assert v.suspecting == 1  # only m2 timed out
        assert not v.crashed
        v2 = group.verdict("a", now=1.08)
        assert v2 is v  # cache hit: no epoch moved between the queries

    def test_transition_invalidates_cache(self):
        group = MonitorGroup()
        group.add_monitor("m1", _fed_table(1.0))
        group.add_monitor("m2", _fed_table(1.0))
        assert not group.verdict("a", now=1.05).crashed
        # Both monitors time out -> both transition -> cache must miss.
        v = group.verdict("a", now=3.0)
        assert v.crashed
        assert v.suspecting == 2

    def test_crashed_nodes_incremental_dirty_path(self):
        t1 = _fed_table(1.0, nodes=("a", "b", "c"))
        t2 = _fed_table(1.0, nodes=("a", "b", "c"))
        group = MonitorGroup()
        group.add_monitor("m1", t1)
        group.add_monitor("m2", t2)
        assert group.crashed_nodes(1.05) == []
        # Only "a" keeps beating; b and c go silent and cross the timeout.
        t, seq = 1.2, 20
        while t <= 3.2:
            t1.heartbeat("a", seq, t)
            t2.heartbeat("a", seq, t)
            seq += 1
            t += 0.1
        assert group.crashed_nodes(3.0) == ["b", "c"]
        # Next call re-judges only the dirty set (empty now) — roster kept.
        assert group.crashed_nodes(3.05) == ["b", "c"]

    def test_flat_member_falls_back_to_legacy_path(self):
        flat = MembershipTable(lambda nid: FixedTimeoutFD(0.1))
        for seq in range(12):
            flat.heartbeat("a", seq, 0.1 * seq)
        group = MonitorGroup()
        group.add_monitor("m1", flat)
        assert not group.verdict("a", now=1.05).crashed
        assert group.crashed_nodes(3.0) == ["a"]

    def test_membership_shape_change_rebuilds_roster(self):
        t1 = _fed_table(1.0)
        group = MonitorGroup()
        group.add_monitor("m1", t1)
        assert group.crashed_nodes(3.0) == ["a", "b"]
        # A new silent-then-dead node registers without any transition the
        # dirty set could see... until its first classification.
        t2, seq = 3.1, 40
        while t2 <= 3.6:
            t1.heartbeat("late", seq, t2)
            seq += 1
            t2 += 0.1
        assert group.crashed_nodes(3.55) == ["a", "b"]
        assert group.crashed_nodes(9.0) == ["a", "b", "late"]
