#!/usr/bin/env python3
"""Consensus riding on failure detection — the paper's ◊P_ac claim, live.

"From a theoretical view, SFD satisfies the property of the accrual
failure detector, and also belongs to the class ◊P_ac … which is
sufficient to solve the consensus problem."  (Section IV-B)

Five cloud nodes must agree on a configuration epoch.  The round-0
coordinator crashes mid-protocol; each surviving node's failure detector
(SFD itself!) suspects it, the rotating-coordinator protocol moves to
round 1, and everyone decides the same valid value.  The same run is then
repeated with the φ FD and with Chen FD to show the detector is a
pluggable liveness oracle.

Run:  python examples/consensus_demo.py
"""

from repro import QoSRequirements, SFD, SlotConfig
from repro.consensus import ConsensusCluster
from repro.detectors import ChenFD, PhiFD

VALUES = ["epoch-17", "epoch-18", "epoch-18", "epoch-19", "epoch-17"]
CRASH = {0: 2.0}  # round-0 coordinator dies before the protocol starts
START = 3.0       # detectors are warm by then; suspicion, not timeout


def factory_sfd(peer: int):
    req = QoSRequirements(
        max_detection_time=1.0, max_mistake_rate=1.0, min_query_accuracy=0.9
    )
    return SFD(req, sm1=0.05, window_size=10, slot=SlotConfig(20))


DETECTORS = {
    "SFD": factory_sfd,
    "phi FD": lambda peer: PhiFD(4.0, window_size=10),
    "Chen FD": lambda peer: ChenFD(0.1, window_size=10),
}


def main() -> None:
    print("consensus among 5 nodes; round-0 coordinator crashes at t=2 s\n")
    for name, factory in DETECTORS.items():
        cluster = ConsensusCluster(
            VALUES,
            detector_factory=factory,
            crash_times=CRASH,
            start_time=START,
            seed=42,
        )
        out = cluster.run(horizon=30.0)
        assert out.terminated and out.agreement and out.validity
        rounds = max(out.rounds[p] for p in out.correct)
        print(
            f"  driven by {name:8s}: decided {out.decision!r} "
            f"in {rounds} round(s), "
            f"{out.latency - START:.2f} s after the protocol started"
        )
    print("\nvalidity + agreement + termination hold for every detector —")
    print("the failure detector is a pluggable liveness oracle (Section IV-B).")


if __name__ == "__main__":
    main()
