"""Common interface of all streaming failure detectors.

The paper's system model (Section II-B, Fig. 2) has a monitored process
``p`` sending heartbeats over an unreliable channel to a monitor ``q``;
the detector at ``q`` consumes heartbeat *arrivals* and exposes, at any
instant, either a binary trust/suspect output (Chen, Bertier) or a
continuous suspicion level (accrual detectors: φ, SFD).  This module fixes
that contract so monitors, the DES, the asyncio runtime, and the replay
cross-checks can host any detector interchangeably.
"""

from __future__ import annotations

import abc
import math

from repro.errors import ConfigurationError, NotWarmedUpError

__all__ = ["FailureDetector", "TimeoutFailureDetector"]


class FailureDetector(abc.ABC):
    """Abstract streaming failure detector (monitor-side, per peer).

    Life cycle: the host calls :meth:`observe` for every received heartbeat
    (in sequence order; transport reordering is resolved by the host) and
    may query :meth:`suspects` / :meth:`suspicion` at arbitrary times.
    Queries before :attr:`ready` raise
    :class:`~repro.errors.NotWarmedUpError` — the paper only trusts a
    detector once its sampling window has filled (Section V).
    """

    #: Human-readable detector family name (used in reports and figures).
    name: str = "abstract"

    @abc.abstractmethod
    def observe(self, seq: int, arrival: float, send_time: float | None = None) -> None:
        """Feed one received heartbeat.

        Parameters
        ----------
        seq:
            Heartbeat sequence number assigned by the sender (gaps reveal
            losses).
        arrival:
            Receive timestamp on the monitor's clock, seconds.
        send_time:
            Optional sender timestamp carried in the heartbeat; detectors
            must not rely on it for their decision (clocks are not
            synchronized) but may log it for statistics, as the paper does.
        """

    @property
    @abc.abstractmethod
    def ready(self) -> bool:
        """True once the detector has warmed up and can answer queries."""

    @abc.abstractmethod
    def suspicion(self, now: float) -> float:
        """Continuous suspicion level at time ``now`` (detector scale).

        For accrual detectors this is the published scale (φ for the φ FD,
        the margin-normalized level for SFD).  For binary timeout detectors
        it is the indicator ``0.0`` (trust) / ``inf`` (suspect), so that
        ``suspicion(now) > threshold`` is meaningful for every detector.
        """

    def suspects(self, now: float) -> bool:
        """Binary interpretation of the output at time ``now``."""
        return self.suspicion(now) > self.binary_threshold()

    def binary_threshold(self) -> float:
        """Suspicion level above which the binary output is "suspect".

        Timeout detectors use 0 (any positive suspicion means the freshness
        point has passed); accrual detectors override with their configured
        threshold.
        """
        return 0.0

    def suspicion_eta(self, level: float) -> float:
        """Absolute time at which :meth:`suspicion` first reaches ``level``.

        The inverse of the suspicion curve for the *current* detector state
        (no heartbeat between now and the returned instant).  Hosts that
        maintain status snapshots incrementally (the sharded membership
        table's deadline wheel) use this to schedule the next re-check
        instead of polling every node on every query; they re-evaluate
        :meth:`suspicion` exactly at the returned time, so the answer is a
        scheduling hint, not a verdict — but it must never be *later* than
        the true crossing, or a scheduled host would miss a transition.

        Returns ``math.inf`` when the level is unreachable without further
        heartbeats, and ``-math.inf`` when the crossing time cannot be
        computed for this detector (the conservative answer: re-check on
        every query).  The base implementation knows nothing about the
        suspicion curve and returns ``-math.inf``.
        """
        return -math.inf

    def reset(self) -> None:
        """Forget all history (re-enter warm-up).  Optional override."""
        raise NotImplementedError(f"{type(self).__name__} does not support reset()")


class TimeoutFailureDetector(FailureDetector):
    """Base for freshness-point (timeout) detectors.

    Subclasses implement :meth:`_next_freshness` from their estimator state;
    this base handles sequence bookkeeping, warm-up, and the standard
    binary/accrual outputs.  The *suspicion level* of a timeout detector is
    ``max(0, now − FP)`` — the time by which the heartbeat is overdue —
    which is 0 exactly while the detector trusts.
    """

    #: When not ``None``, a contract for batch ingest fast paths: this
    #: detector's :meth:`_ingest` is a no-op and its freshness point is
    #: always ``arrival + freshness_offset``, so a warmed-up observe can
    #: be fused into plain arithmetic.  Estimator-driven subclasses leave
    #: it ``None``; constant-interval ones set it per instance.
    freshness_offset: float | None = None

    def __init__(self, warmup: int):
        if warmup < 2:
            raise ConfigurationError(f"warmup must be >= 2 heartbeats, got {warmup!r}")
        self._warmup = int(warmup)
        self._observed = 0
        self._freshness = math.nan
        self._last_arrival = math.nan

    @property
    def warmup(self) -> int:
        """Heartbeats required before the detector answers queries."""
        return self._warmup

    @property
    def observed(self) -> int:
        """Heartbeats consumed so far."""
        return self._observed

    @property
    def ready(self) -> bool:
        return self._observed >= self._warmup

    @property
    def last_arrival(self) -> float:
        if self._observed == 0:
            raise NotWarmedUpError("no heartbeat observed yet")
        return self._last_arrival

    def observe(self, seq: int, arrival: float, send_time: float | None = None) -> None:
        self._ingest(seq, float(arrival), send_time)
        self._observed += 1
        self._last_arrival = float(arrival)
        if self.ready:
            self._freshness = self._next_freshness()

    @abc.abstractmethod
    def _ingest(self, seq: int, arrival: float, send_time: float | None) -> None:
        """Update estimator state with one heartbeat."""

    @abc.abstractmethod
    def _next_freshness(self) -> float:
        """Absolute freshness point guarding the *next* heartbeat."""

    def freshness_point(self) -> float:
        """Current freshness point ``τ`` (absolute time, seconds)."""
        if not self.ready:
            raise NotWarmedUpError(
                f"{self.name}: queried after {self._observed} heartbeats, "
                f"needs {self._warmup}"
            )
        return self._freshness

    def timeout(self) -> float:
        """Relative timeout: freshness point minus last arrival."""
        return self.freshness_point() - self.last_arrival

    def suspicion(self, now: float) -> float:
        return max(0.0, float(now) - self.freshness_point())

    def suspicion_eta(self, level: float) -> float:
        """Overdue-seconds suspicion grows linearly from the freshness
        point, so the crossing time is exact arithmetic."""
        if level < 0:
            raise ConfigurationError(f"level must be >= 0, got {level!r}")
        return self.freshness_point() + level
