"""Experiment plans: (trace × family × grid) declarations → flat job lists.

Section V's evaluation is one embarrassingly-parallel job: replay the same
trace "from a highly aggressive behavior to a very conservative one"
through every detector family under identical conditions.  The unit of
work is therefore *one replay of one spec over one view*, and this module
makes that unit explicit:

* an :class:`ExperimentPlan` collects named traces and sweep declarations
  (family + grid + fixed parameters, exactly the vocabulary of
  :func:`repro.analysis.sweep.sweep_curve`),
* :meth:`ExperimentPlan.jobs` expands the declarations into a flat,
  deterministically ordered list of :class:`ReplayJob`\\ s — each carrying
  a frozen, *picklable* replay spec (specs round-trip through
  ``Spec.to_dict``/``from_dict`` when crossing process boundaries),
* :meth:`ExperimentPlan.run` hands the jobs to a pluggable executor
  (:class:`~repro.exp.executors.SerialExecutor` by default,
  :class:`~repro.exp.executors.ProcessPoolExecutor` for fan-out) and
  reassembles the per-point QoS reports into
  :class:`~repro.qos.area.QoSCurve`\\ s **in sweep order**, regardless of
  completion order — which is what keeps figure outputs bit-identical
  between serial and parallel runs.

The separation of detection logic from the execution/aggregation layer
follows Dobre et al.'s architecture argument; the config-file front end
lives in :mod:`repro.exp.config`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence, Union

from repro.detectors.registry import DetectorFamily, get as get_family
from repro.errors import ConfigurationError
from repro.exp.archive import check_archive_name
from repro.exp.policy import ExecutionResult, FailureReport
from repro.qos.area import QoSCurve
from repro.qos.spec import QoSReport
from repro.traces.columnar import TraceStore, is_columnar
from repro.traces.trace import HeartbeatTrace, MonitorView

#: What :meth:`ExperimentPlan.add_trace` accepts; stores and paths stay
#: *unopened views* — workers mmap the file instead of unpickling arrays.
TraceSource = Union[MonitorView, HeartbeatTrace, TraceStore, str, Path]

__all__ = [
    "ReplayJob",
    "SweepDecl",
    "ExperimentPlan",
    "PlanResult",
    "check_shard",
]


def check_shard(shard: tuple[int, int]) -> tuple[int, int]:
    """Validate an ``(i, n)`` shard selector; returns it normalized."""
    try:
        index, count = int(shard[0]), int(shard[1])
    except (TypeError, ValueError, IndexError):
        raise ConfigurationError(
            f"shard must be an (i, n) pair, got {shard!r}"
        ) from None
    if count < 1 or not (0 <= index < count):
        raise ConfigurationError(
            f"shard index must satisfy 0 <= i < n, got i={index}, n={count}"
        )
    return index, count


def _executor_kwargs(executor, **candidates) -> dict:
    """Keyword args (of ``candidates``, non-None) the executor accepts.

    Third-party executors predating the failure policy keep working: a
    ``run`` signature without ``policy``/``on_result`` simply never sees
    them.  ``**kwargs``-style signatures receive everything.
    """
    try:
        params = inspect.signature(executor.run).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/C funcs
        return {}
    catch_all = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    return {
        key: value
        for key, value in candidates.items()
        if value is not None and (catch_all or key in params)
    }


@dataclass(frozen=True)
class ReplayJob:
    """One replay of one spec over one named view — the unit of work.

    Jobs are picklable (the spec pickles through its
    ``to_dict``/``from_dict`` round-trip), carry their position in the
    plan expansion (``index``), and know which curve point they produce
    (``trace``/``sweep``/``parameter``) so executors may run them in any
    order and the plan can still reassemble curves deterministically.
    """

    index: int
    trace: str
    sweep: str
    family: str
    parameter: float
    spec: Any

    def describe(self) -> str:
        """Human-oriented job label for logs and failure reports."""
        try:
            from repro.detectors.registry import spec_string

            text = spec_string(self.spec)
        except Exception:
            text = repr(self.spec)
        return f"job[{self.index}] trace={self.trace!r} sweep={self.sweep!r} {text}"


@dataclass(frozen=True)
class SweepDecl:
    """One declared sweep: a family swept over a grid on one trace."""

    trace: str
    name: str
    family: str
    grid: tuple[float, ...]
    params: Mapping[str, Any] = field(default_factory=dict)
    base: Any = None  # optional spec template (config-file path)
    descriptor: DetectorFamily | None = None  # resolved family (spec building)


class ExperimentPlan:
    """Declarative (trace × family × grid) experiment, executor-agnostic.

    Usage::

        plan = ExperimentPlan()
        plan.add_trace("wan1", trace_or_view)
        plan.add_sweep("wan1", "chen", alphas, window=1000)
        plan.add_sweep("wan1", "sfd", sm1_list, requirements=req)
        result = plan.run(ProcessPoolExecutor(jobs=4))
        curve = result.curve("wan1", "chen")

    Declaration order is preserved everywhere: :meth:`jobs` expands
    sweeps in the order they were added and grids in the order given, and
    :class:`PlanResult` keeps that order in its curves.
    """

    def __init__(self) -> None:
        self._views: dict[str, MonitorView | TraceStore] = {}
        self._sweeps: list[SweepDecl] = []

    # -- declaration ---------------------------------------------------- #

    def add_trace(self, name: str, source: TraceSource) -> "ExperimentPlan":
        """Register a named trace source.

        A :class:`HeartbeatTrace` is reduced to its
        :class:`~repro.traces.trace.MonitorView` here; a
        :class:`~repro.traces.columnar.TraceStore` (or a path to a
        columnar file) is kept as a store, so process-pool executors ship
        the *path* to workers — each worker memory-maps the file instead
        of unpickling megabytes of view arrays.  Non-columnar paths are
        loaded eagerly.
        """
        if not name:
            raise ConfigurationError("trace name must be non-empty")
        check_archive_name(name, "trace name")
        if name in self._views:
            raise ConfigurationError(f"trace {name!r} already declared")
        if isinstance(source, (str, Path)):
            source = (
                TraceStore(source)
                if is_columnar(source)
                else HeartbeatTrace.load(source)
            )
        if isinstance(source, HeartbeatTrace):
            view: MonitorView | TraceStore = source.monitor_view()
        elif isinstance(source, (MonitorView, TraceStore)):
            view = source
        else:
            raise ConfigurationError(
                f"trace {name!r}: cannot replay over {type(source).__name__}"
            )
        self._views[name] = view
        return self

    def add_sweep(
        self,
        trace: str,
        family: Union[str, DetectorFamily],
        grid: Sequence[float] | None = None,
        *,
        name: str | None = None,
        base: Any = None,
        **params: Any,
    ) -> "ExperimentPlan":
        """Declare one sweep over an already-declared trace.

        Parameters mirror :func:`repro.analysis.sweep.sweep_curve`:
        ``grid`` defaults to the family's registered aggressive →
        conservative grid, ``**params`` are fixed spec fields applied to
        every point.  ``name`` keys the resulting curve (default: the
        family name — declare distinct names to sweep one family twice
        on the same trace).  ``base`` optionally gives a full spec
        template instead of ``**params`` (the config-file path: the
        sweep parameter is overridden per grid point via the spec's
        dict round-trip).
        """
        fam = get_family(family) if isinstance(family, str) else family
        if trace not in self._views:
            raise ConfigurationError(
                f"sweep over undeclared trace {trace!r}; "
                f"declared: {', '.join(self._views) or '(none)'}"
            )
        if base is not None and params:
            raise ConfigurationError(
                "give either a base spec or **params, not both"
            )
        key = name if name is not None else fam.name
        check_archive_name(key, "sweep name")
        if any(s.trace == trace and s.name == key for s in self._sweeps):
            raise ConfigurationError(
                f"sweep {key!r} already declared for trace {trace!r} "
                "(pass name= to distinguish)"
            )
        values = fam.default_grid if grid is None else tuple(float(v) for v in grid)
        self._sweeps.append(
            SweepDecl(
                trace=trace,
                name=key,
                family=fam.name,
                grid=values,
                params=dict(params),
                base=base,
                descriptor=fam,
            )
        )
        return self

    # -- introspection -------------------------------------------------- #

    @property
    def views(self) -> Mapping[str, MonitorView | TraceStore]:
        return dict(self._views)

    @property
    def sweeps(self) -> tuple[SweepDecl, ...]:
        return tuple(self._sweeps)

    def __len__(self) -> int:
        """Total number of replay jobs the plan expands to."""
        return sum(len(s.grid) for s in self._sweeps)

    # -- expansion ------------------------------------------------------ #

    def _point_spec(self, decl: SweepDecl, value: float):
        fam = decl.descriptor if decl.descriptor is not None else get_family(decl.family)
        if decl.base is not None:
            if fam.sweep_param is None:
                return decl.base
            data = decl.base.to_dict()
            data[fam.sweep_param] = value
            return fam.spec_from_dict(data)
        return fam.grid_spec(value, **decl.params)

    def jobs(self) -> list[ReplayJob]:
        """Expand every declaration into the flat deterministic job list."""
        out: list[ReplayJob] = []
        for decl in self._sweeps:
            for value in decl.grid:
                out.append(
                    ReplayJob(
                        index=len(out),
                        trace=decl.trace,
                        sweep=decl.name,
                        family=decl.family,
                        parameter=float(value),
                        spec=self._point_spec(decl, float(value)),
                    )
                )
        return out

    # -- execution ------------------------------------------------------ #

    def run(
        self,
        executor=None,
        *,
        instruments=None,
        cache=None,
        policy=None,
        shard: tuple[int, int] | None = None,
        progress=None,
    ) -> "PlanResult":
        """Execute every job and reassemble curves in sweep order.

        ``executor`` defaults to a fresh
        :class:`~repro.exp.executors.SerialExecutor`; any object with
        ``run(jobs, views, instruments=None)`` works — returning either a
        bare ``{index: QoSReport}`` mapping (the historical contract) or
        an :class:`~repro.exp.policy.ExecutionResult` carrying
        quarantined-job records alongside the reports.  Reassembly is by
        job index, so executors are free to complete jobs in any order.

        ``cache`` (a :class:`~repro.exp.cache.SweepCache`) makes the run
        incremental *and crash-safe*: jobs are partitioned into *hits* —
        whose reports are loaded from the cache with zero replay — and
        *misses*, which are handed to the executor.  Each miss is stored
        **the moment its report exists** (via the executor's
        ``on_result`` streaming callback when it supports one), so a run
        killed partway leaves every completed grid point on disk and a
        rerun replays only the remainder.  Keys cover the view
        fingerprint, family, and full spec, so a cached run over
        unchanged inputs reassembles curves bit-identically to a cold
        one; per-run hit/miss counts land on :attr:`PlanResult.cache`.

        ``policy`` (a :class:`~repro.exp.policy.FailurePolicy`) is
        forwarded to executors that accept one.  Under ``continue`` mode,
        jobs that exhaust their retries are *quarantined*: their curves
        render with explicit holes (the point is simply absent) and the
        run's :class:`~repro.exp.policy.FailureReport` lands on
        :attr:`PlanResult.failures`.

        ``shard=(i, n)`` restricts execution to every job with
        ``index % n == i`` (round-robin, so each shard samples every
        sweep).  Out-of-shard points are left as holes unless the cache
        already holds them; :func:`repro.exp.config.merge_config`
        reassembles full curves from shards sharing a cache directory.

        ``progress`` (a :class:`~repro.exp.progress.RunProgress`) turns
        the run observable: job completions stream through ``on_result``,
        retry/quarantine hooks are teed off the instruments seam, and the
        final counts are reconciled against this result before the
        heartbeat file is sealed — so its last state always matches the
        archive, streaming executor or not.
        """
        if executor is None:
            from repro.exp.executors import SerialExecutor

            executor = SerialExecutor()
        if not self._sweeps:
            raise ConfigurationError("plan declares no sweeps")
        if shard is not None:
            shard = check_shard(shard)
        jobs = self.jobs()
        mine = [
            j for j in jobs if shard is None or j.index % shard[1] == shard[0]
        ]
        reports: dict[int, QoSReport] = {}
        misses = mine
        keys: dict[int, str] = {}
        fingerprints: dict[str, str] = {}
        stats = None
        if cache is not None:
            fingerprints = {
                name: view.fingerprint() for name, view in self._views.items()
            }
            misses = []
            for job in jobs:
                key = cache.key(fingerprints[job.trace], job.family, job.spec)
                keys[job.index] = key
                qos = cache.load(key)
                if qos is not None:
                    reports[job.index] = qos
                elif shard is None or job.index % shard[1] == shard[0]:
                    misses.append(job)

        def store(job: ReplayJob, qos: QoSReport) -> None:
            cache.store(
                keys[job.index],
                qos,
                meta={
                    "trace": job.trace,
                    "sweep": job.sweep,
                    "family": job.family,
                    "parameter": job.parameter,
                    "view": fingerprints[job.trace],
                },
            )

        if progress is not None:
            from repro.exp.progress import ProgressInstruments

            progress.begin(
                total=len(mine),
                cache_hits=len(mine) - len(misses),
                shard=shard,
            )
            instruments = ProgressInstruments(progress, instruments)

        callbacks = []
        if cache is not None:
            callbacks.append(store)
        if progress is not None:
            callbacks.append(lambda job, qos: progress.job_done(job, qos))
        if len(callbacks) == 1:
            on_result = callbacks[0]
        elif callbacks:
            def on_result(job: ReplayJob, qos: QoSReport) -> None:
                for fn in callbacks:
                    fn(job, qos)
        else:
            on_result = None

        failures: tuple = ()
        try:
            if misses:
                kwargs = _executor_kwargs(
                    executor, policy=policy, on_result=on_result
                )
                executed = executor.run(
                    misses, self.views, instruments=instruments, **kwargs
                )
                if isinstance(executed, ExecutionResult):
                    failures = executed.failures
                    executed = dict(executed.reports)
                else:
                    executed = dict(executed)
                if cache is not None:
                    if "on_result" not in kwargs:
                        # Executor predates streaming — store after the fact.
                        for job in misses:
                            if job.index in executed:
                                store(job, executed[job.index])
                    cache.write_manifest()
                reports.update(executed)
        except BaseException:
            if progress is not None:
                progress.finish("failed")
            raise
        if cache is not None:
            from repro.exp.cache import CacheStats

            stats = CacheStats(
                hits=len(mine) - len(misses),
                misses=len(misses),
                invalid=0,
            )
        quarantined = {f.job.index for f in failures}
        missing = [
            j.index
            for j in mine
            if j.index not in reports and j.index not in quarantined
        ]
        if missing:
            if progress is not None:
                progress.finish("failed")
            raise ConfigurationError(
                f"executor returned no result for jobs {missing[:5]}"
                + ("…" if len(missing) > 5 else "")
            )
        if progress is not None:
            progress.finish(
                "completed",
                done=sum(1 for j in mine if j.index in reports),
                quarantined=len(quarantined),
            )
        curves: dict[str, dict[str, QoSCurve]] = {}
        cursor = 0
        for decl in self._sweeps:
            curve = QoSCurve(decl.family)
            for value in decl.grid:
                if cursor in reports:  # quarantined/out-of-shard → hole
                    curve.add(float(value), reports[cursor])
                cursor += 1
            curves.setdefault(decl.trace, {})[decl.name] = curve
        return PlanResult(
            curves=curves,
            cache=stats,
            failures=FailureReport(failures=tuple(failures)),
            shard=shard,
        )


@dataclass
class PlanResult:
    """Curves of one executed plan, keyed ``trace → sweep name``.

    ``cache`` carries this run's hit/miss accounting when the plan ran
    against a :class:`~repro.exp.cache.SweepCache`, ``None`` otherwise.
    ``failures`` records every quarantined job (empty on a clean run);
    their curve points are explicit holes.  ``shard`` is the ``(i, n)``
    selector when this result covers only one shard of the plan.
    """

    curves: dict[str, dict[str, QoSCurve]]
    cache: Any = None
    failures: FailureReport = field(default_factory=FailureReport)
    shard: tuple[int, int] | None = None

    @property
    def clean(self) -> bool:
        """True when no job was quarantined."""
        return not self.failures

    def curve(self, trace: str, name: str | None = None) -> QoSCurve:
        """One curve; ``name`` may be omitted when the trace has one sweep."""
        try:
            per_trace = self.curves[trace]
        except KeyError:
            raise ConfigurationError(
                f"no curves for trace {trace!r}; have {', '.join(self.curves)}"
            ) from None
        if name is None:
            if len(per_trace) != 1:
                raise ConfigurationError(
                    f"trace {trace!r} has {len(per_trace)} curves; name one of "
                    f"{', '.join(per_trace)}"
                )
            return next(iter(per_trace.values()))
        try:
            return per_trace[name]
        except KeyError:
            raise ConfigurationError(
                f"no curve {name!r} for trace {trace!r}; have {', '.join(per_trace)}"
            ) from None

    def trace_curves(self, trace: str) -> dict[str, QoSCurve]:
        """All curves of one trace, declaration order (for figure renders)."""
        if trace not in self.curves:
            raise ConfigurationError(
                f"no curves for trace {trace!r}; have {', '.join(self.curves)}"
            )
        return dict(self.curves[trace])

    def items(self) -> Iterable[tuple[str, str, QoSCurve]]:
        """Flat ``(trace, name, curve)`` iteration, declaration order."""
        for trace, per_trace in self.curves.items():
            for name, curve in per_trace.items():
                yield trace, name, curve

    def __len__(self) -> int:
        return sum(len(per_trace) for per_trace in self.curves.values())
