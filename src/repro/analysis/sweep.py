"""Parameter sweeps producing QoS-space curves.

"The idea is based on the following question: given a set of QoS
requirements, can the failure detector be parameterized to match these
requirements? … we measure the area covered by the failure detector when
we vary its parameter from a highly aggressive behavior to a very
conservative one" (Section V).  Each function sweeps one detector family
over a shared :class:`~repro.traces.trace.MonitorView` and returns a
:class:`~repro.qos.area.QoSCurve` in sweep order.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.feedback import InfeasiblePolicy
from repro.core.sfd import SlotConfig
from repro.qos.area import QoSCurve
from repro.qos.spec import QoSRequirements
from repro.replay.engine import (
    BertierSpec,
    ChenSpec,
    FixedSpec,
    PhiSpec,
    QuantileSpec,
    SFDSpec,
    replay,
)
from repro.traces.trace import MonitorView

__all__ = [
    "chen_curve",
    "phi_curve",
    "bertier_point",
    "sfd_curve",
    "fixed_curve",
    "quantile_curve",
]


def chen_curve(
    view: MonitorView,
    alphas: Sequence[float],
    *,
    window: int = 1000,
    nominal_interval: float | None = None,
    instruments=None,
) -> QoSCurve:
    """Chen FD swept over its constant safety margin ``α`` (Eq. 3)."""
    curve = QoSCurve("chen")
    for alpha in alphas:
        res = replay(
            ChenSpec(alpha=alpha, window=window, nominal_interval=nominal_interval),
            view,
            instruments=instruments,
        )
        curve.add(alpha, res.qos)
    return curve


def phi_curve(
    view: MonitorView,
    thresholds: Sequence[float],
    *,
    window: int = 1000,
    instruments=None,
) -> QoSCurve:
    """φ FD swept over its threshold ``Φ`` (paper range ``[0.5, 16]``).

    Thresholds past the float64 inversion cutoff produce infinite
    detection times; they stay in the curve (``finite()`` drops them),
    making the paper's "graphs … stopped early" visible in the data.
    """
    curve = QoSCurve("phi")
    for th in thresholds:
        res = replay(PhiSpec(threshold=th, window=window), view,
                     instruments=instruments)
        curve.add(th, res.qos)
    return curve


def bertier_point(
    view: MonitorView,
    *,
    window: int = 1000,
    nominal_interval: float | None = None,
    instruments=None,
) -> QoSCurve:
    """Bertier FD — a single point ("it has no dynamic parameters")."""
    curve = QoSCurve("bertier")
    res = replay(
        BertierSpec(window=window, nominal_interval=nominal_interval),
        view,
        instruments=instruments,
    )
    curve.add(0.0, res.qos)
    return curve


def fixed_curve(
    view: MonitorView,
    timeouts: Sequence[float],
    *,
    instruments=None,
) -> QoSCurve:
    """Fixed-timeout baseline swept over its static interval."""
    curve = QoSCurve("fixed")
    for to in timeouts:
        res = replay(FixedSpec(timeout=to), view, instruments=instruments)
        curve.add(to, res.qos)
    return curve


def quantile_curve(
    view: MonitorView,
    quantiles: Sequence[float],
    *,
    window: int = 1000,
    instruments=None,
) -> QoSCurve:
    """Quantile-timeout FD swept over ``q`` (the [34-35] family).

    Its conservative reach is capped by the observed inter-arrival maximum
    — sweeping ``q -> 1`` cannot go past it, unlike Chen's margin."""
    curve = QoSCurve("quantile")
    for q in quantiles:
        res = replay(QuantileSpec(quantile=q, window=window), view,
                     instruments=instruments)
        curve.add(q, res.qos)
    return curve


def sfd_curve(
    view: MonitorView,
    requirements: QoSRequirements,
    sm1_values: Sequence[float],
    *,
    alpha: float = 0.1,
    beta: float = 0.5,
    window: int = 1000,
    slot: SlotConfig | None = None,
    nominal_interval: float | None = None,
    policy: InfeasiblePolicy = InfeasiblePolicy.STOP,
    sm_max: float = math.inf,
    instruments=None,
) -> QoSCurve:
    """SFD swept over the initial margin ``SM₁`` (Section V: "a list about
    the initial safety margin SM₁ is given … SM₁ gradually increases").

    Unlike the open-loop detectors, every SM₁ run *self-tunes toward the
    same requirement*, which is why the resulting curve occupies only the
    target band instead of the full aggressive-conservative range — the
    paper's headline observation ("For SFD, there is no data in the too
    aggressive range … and the too conservative range").
    """
    curve = QoSCurve("sfd")
    slot = slot if slot is not None else SlotConfig()
    for sm1 in sm1_values:
        res = replay(
            SFDSpec(
                requirements=requirements,
                sm1=sm1,
                alpha=alpha,
                beta=beta,
                window=window,
                slot=slot,
                nominal_interval=nominal_interval,
                policy=policy,
                sm_bounds=(0.0, sm_max),
            ),
            view,
            instruments=instruments,
        )
        curve.add(sm1, res.qos)
    return curve
